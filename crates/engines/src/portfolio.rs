//! Parallel engine portfolio — the paper's best "hybrid" configuration
//! (Figure 5): several analyzers race on worker threads over the same
//! [`TransitionSystem`], the first definite verdict wins, and the
//! losers are cooperatively cancelled.
//!
//! Cancellation rides on the `satb` stop flag: every member engine gets
//! a clone of this portfolio's [`Budget`] carrying one shared
//! `Arc<AtomicBool>`, which [`Budget::sat_limits`] threads into each
//! SAT query. When the winner reports, the flag is raised and every
//! in-flight solve returns `Unknown(Cancelled)` within one solver-loop
//! iteration — no loser outlives the winner by more than one
//! conflict-check interval.
//!
//! The default line-up is BMC (bug hunting), k-induction, interpolation
//! and PDR — mirroring how ABC's `dprove`, CPAchecker 3.0's strategy
//! portfolio, and rIC3 field complementary engines so that whichever
//! technique fits the design answers first.
//!
//! The race is *certifying* (see [`crate::certify`]): a definite
//! verdict only wins after its witness re-checks against the raw
//! transition template with an independent solver. A member whose
//! witness fails is demoted to [`Unknown::CertificateFailed`] and the
//! race goes on with the remaining seats; contradicting definite
//! verdicts are resolved by trusting the side whose witness checked,
//! and only certified-vs-certified contradictions raise the
//! [`PortfolioOutcome::disagreement`] alarm. Seat panics are isolated
//! with `catch_unwind` and surfaced as [`Unknown::Crashed`] — a
//! crashing member degrades the portfolio instead of killing it.
//!
//! # Example
//!
//! ```
//! use engines::portfolio::Portfolio;
//! use engines::{Checker, Verdict};
//! use rtlir::{Sort, TransitionSystem};
//!
//! // A counter with a bug at depth 5: BMC wins the race.
//! let mut ts = TransitionSystem::new("c");
//! let s = ts.add_state("count", Sort::Bv(8));
//! let sv = ts.pool_mut().var(s);
//! let one = ts.pool_mut().constv(8, 1);
//! let next = ts.pool_mut().add(sv, one);
//! let zero = ts.pool_mut().constv(8, 0);
//! ts.set_init(s, zero);
//! ts.set_next(s, next);
//! let five = ts.pool_mut().constv(8, 5);
//! let bad = ts.pool_mut().eq(sv, five);
//! ts.add_bad(bad, "reaches 5");
//!
//! let report = Portfolio::default().check_detailed(&ts);
//! assert!(report.verdict.is_unsafe());
//! assert!(report.winner.is_some());
//! ```

use crate::bmc::Bmc;
use crate::certify::{self, Certificate, CertifyReport};
use crate::itp::Interpolation;
use crate::kind::KInduction;
use crate::parallel::{LemmaBus, ParallelPdr};
use crate::pdr::Pdr;
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Unknown, Verdict};
use rtlir::TransitionSystem;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// One member engine's result within a portfolio run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The member's engine name (`Checker::name`).
    pub name: &'static str,
    /// Its verdict and statistics (losers typically report
    /// `Unknown(Cancelled)`; a member whose witness failed its
    /// re-check reports `Unknown(CertificateFailed)`, a panicked one
    /// `Unknown(Crashed)`).
    pub outcome: CheckOutcome,
    /// Whether this member produced the winning verdict.
    pub winner: bool,
    /// The independent witness re-check of this member's definite
    /// verdict (`None` when the member never answered definitely).
    pub certify: Option<CertifyReport>,
}

/// The combined answer of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning definite verdict, or the merged `Unknown` when no
    /// member answered.
    pub verdict: Verdict,
    /// Aggregated statistics: the winner's depth, and queries /
    /// conflicts / reduction counters / arena bytes summed over every
    /// member.
    pub stats: EngineStats,
    /// Name of the member that answered first, if any.
    pub winner: Option<&'static str>,
    /// Every member's own verdict and statistics.
    pub engines: Vec<EngineReport>,
    /// Set when two members produced contradicting definite verdicts
    /// that *both* survived their witness re-checks — a soundness
    /// alarm worth surfacing. Contradictions where only one side's
    /// witness checked are resolved silently in its favour.
    pub disagreement: bool,
    /// Whether the winning verdict is backed by a witness that passed
    /// the independent re-check (`false` for winners that cannot
    /// produce one — word-level k-induction, seated software
    /// analyzers — and for merged-Unknown results).
    pub certified: bool,
    /// The winner's checked Safe witness, when there is one (Unsafe
    /// winners carry their witness trace inside the verdict).
    pub certificate: Option<Certificate>,
    /// CNF preprocessing counters of the shared transition template
    /// every member solved on (all zeros for a raw, unsimplified
    /// blast).
    pub preproc: satb::PreprocStats,
    /// Mined-and-certified static strengthening clauses handed to the
    /// members (see [`aig::analysis`]), and how many of them pin a
    /// latch to a constant.
    pub invariant_clauses: u32,
    /// Constant-latch facts among [`invariant_clauses`]
    /// (singleton clauses; these also refined the shared template's
    /// cone of influence).
    ///
    /// [`invariant_clauses`]: PortfolioOutcome::invariant_clauses
    pub invariant_constants: u32,
    /// Whether witness re-checks ran in paranoid mode (see
    /// [`Portfolio::with_paranoid`]); the summary always prints the
    /// proof-replay line when set, even for conflict-free runs that
    /// produced zero chains.
    pub paranoid: bool,
}

impl PortfolioOutcome {
    /// A compact multi-line report: winner, then one line per member
    /// with depth / SAT queries / conflicts / arena footprint.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verdict {} (winner: {}, {}{})",
            self.verdict,
            self.winner.unwrap_or("none"),
            if self.certified {
                "certified"
            } else {
                "uncertified"
            },
            if self.disagreement {
                ", DISAGREEMENT"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  shared blast: preproc elim {} subsumed {} strengthened {}, \
             static invariant {} clauses ({} constants)",
            self.preproc.elim_vars,
            self.preproc.subsumed,
            self.preproc.strengthened,
            self.invariant_clauses,
            self.invariant_constants,
        );
        let replayed: u64 = self
            .engines
            .iter()
            .filter_map(|e| e.certify.as_ref())
            .map(|c| c.proof_chains)
            .sum();
        if self.paranoid || replayed > 0 || self.stats.proof_bytes > 0 {
            let _ = writeln!(
                out,
                "  proof: {} chains replayed by the paranoid checker, \
                 engines logged {} chains ({} B)",
                replayed, self.stats.proof_chains, self.stats.proof_bytes,
            );
        }
        for e in &self.engines {
            let cert = match &e.certify {
                Some(r) if r.ok && r.witnessed => " cert✓",
                Some(r) if !r.ok => " cert✗",
                _ => "",
            };
            let _ = writeln!(
                out,
                "  {:<10} {:<22} depth {:>4}  queries {:>6}  conflicts {:>8}  arena {:>9} B  {:.2}s{}",
                e.name,
                format!("{}{}", e.outcome.outcome, if e.winner { " *" } else { "" }),
                e.outcome.stats.depth,
                e.outcome.stats.sat_queries,
                e.outcome.stats.conflicts,
                e.outcome.stats.arena_peak_bytes,
                e.outcome.stats.time.as_secs_f64(),
                cert,
            );
            let s = &e.outcome.stats;
            if s.lemmas_exported + s.lemmas_imported + s.sync_rounds > 0 {
                let _ = writeln!(
                    out,
                    "             lemma exchange: exported {} imported {} \
                     sync rounds {} lifted lits {}",
                    s.lemmas_exported, s.lemmas_imported, s.sync_rounds, s.lifted_lits,
                );
            }
        }
        out
    }
}

/// Parallel portfolio checker.
///
/// Run it like any other engine via [`Checker::check`], or with
/// [`Portfolio::check_detailed`] for the per-engine breakdown.
///
/// Concurrent `check` calls on the *same* `Portfolio` value share the
/// cancellation flag and would cancel each other; use one `Portfolio`
/// per concurrent run.
pub struct Portfolio {
    budget: Budget,
    /// The portfolio's own flag, raised when a winner reports; member
    /// budgets carry a clone of this one.
    stop: Arc<AtomicBool>,
    /// A stop flag the *caller* supplied on the budget (e.g. this
    /// portfolio is itself a member of a larger race); polled during
    /// the run and forwarded to the members.
    external: Option<Arc<AtomicBool>>,
    engines: Vec<(&'static str, Box<dyn Checker + Send + Sync>)>,
    /// The cross-seat lemma broadcast wired by
    /// [`with_default_engines`](Portfolio::with_default_engines):
    /// PDR publishes frontier clauses, k-induction and interpolation
    /// consume them through admission gates. Cleared at the start of
    /// every run so a reused portfolio never replays stale lemmas
    /// (the gates re-validate per design regardless).
    bus: Option<LemmaBus>,
    /// Witness re-checks run in paranoid mode: every certification
    /// obligation solver logs a resolution proof that is replayed by
    /// the independent checker in [`satb::proofcheck`] before the
    /// verdict is trusted (see [`certify::certify_with_mode`]).
    paranoid: bool,
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::with_default_engines(Budget::default())
    }
}

impl Portfolio {
    /// An empty portfolio with the given budget; add members with
    /// [`push`](Portfolio::push). A stop flag already attached to
    /// `budget` cancels the whole portfolio from outside.
    pub fn new(mut budget: Budget) -> Portfolio {
        let external = budget.stop.take();
        Portfolio {
            stop: Arc::new(AtomicBool::new(false)),
            external,
            budget,
            engines: Vec::new(),
            bus: None,
            paranoid: false,
        }
    }

    /// Turns the witness re-checks paranoid: certification obligation
    /// solvers log resolution proofs and [`satb::proofcheck`] replays
    /// every chain before a verdict may win. A refutation whose proof
    /// fails the replay demotes the member to
    /// [`Unknown::CertificateFailed`] exactly like a bad witness.
    pub fn with_paranoid(mut self, on: bool) -> Portfolio {
        self.paranoid = on;
        self
    }

    /// Whether witness re-checks run in paranoid mode.
    pub fn paranoid(&self) -> bool {
        self.paranoid
    }

    /// The paper's hybrid line-up: BMC, k-induction, interpolation and
    /// PDR, all under `budget` and the shared cancellation flag — plus
    /// the lemma broadcast: PDR's frontier clauses feed the
    /// k-induction step premise and interpolation's frames through
    /// per-consumer admission gates (see [`crate::parallel`]).
    pub fn with_default_engines(budget: Budget) -> Portfolio {
        let mut p = Portfolio::new(budget);
        let bus = LemmaBus::new();
        let b = p.engine_budget();
        p.push(Bmc::new(b.clone()));
        p.push(KInduction::new(b.clone()).with_lemmas(bus.subscribe()));
        p.push(Interpolation::new(b.clone()).with_lemmas(bus.subscribe()));
        p.push(Pdr::new(b).with_bus(bus.publisher()));
        p.bus = Some(bus);
        p
    }

    /// The hybrid line-up with the PDR seat replaced by a
    /// [`ParallelPdr`] pool of `workers` diversified workers (worker 0
    /// publishes to the lemma broadcast).
    pub fn with_parallel_engines(budget: Budget, workers: usize) -> Portfolio {
        let mut p = Portfolio::new(budget);
        let bus = LemmaBus::new();
        let b = p.engine_budget();
        p.push(Bmc::new(b.clone()));
        p.push(KInduction::new(b.clone()).with_lemmas(bus.subscribe()));
        p.push(Interpolation::new(b.clone()).with_lemmas(bus.subscribe()));
        p.push(ParallelPdr::new(b, workers).with_bus(bus.publisher()));
        p.bus = Some(bus);
        p
    }

    /// A clone of the portfolio's budget carrying the shared stop
    /// flag. Engines added via [`push`](Portfolio::push) should be
    /// built from this so the portfolio can cancel them.
    pub fn engine_budget(&self) -> Budget {
        self.budget.clone().with_stop(self.stop.clone())
    }

    /// Adds a member engine. Build it from
    /// [`engine_budget`](Portfolio::engine_budget) or it will ignore
    /// cancellation and only stop at its own limits.
    pub fn push<C: Checker + Send + Sync + 'static>(&mut self, checker: C) {
        self.engines.push((checker.name(), Box::new(checker)));
    }

    /// Member names, in spawn order.
    pub fn members(&self) -> Vec<&'static str> {
        self.engines.iter().map(|(n, _)| *n).collect()
    }

    /// Races every member on `ts` and returns the full breakdown.
    ///
    /// The netlist is blasted and its transition template compiled
    /// exactly **once**, here; every member receives the shared
    /// [`Blasted`] through [`Checker::check_blasted`] instead of
    /// re-encoding the system from scratch.
    pub fn check_detailed(&self, ts: &TransitionSystem) -> PortfolioOutcome {
        let blasted = Blasted::of(ts);
        self.check_detailed_blasted(ts, &blasted)
    }

    /// Like [`check_detailed`](Portfolio::check_detailed) with a
    /// caller-provided shared blast (e.g. reused across several runs).
    pub fn check_detailed_blasted(
        &self,
        ts: &TransitionSystem,
        blasted: &Blasted,
    ) -> PortfolioOutcome {
        let started = Instant::now();
        self.stop.store(false, Ordering::Relaxed);
        if let Some(bus) = &self.bus {
            bus.clear();
        }
        if self.engines.is_empty() {
            return PortfolioOutcome {
                verdict: Verdict::Unknown(Unknown::Inconclusive("empty portfolio".into())),
                stats: EngineStats::default(),
                winner: None,
                engines: Vec::new(),
                disagreement: false,
                certified: false,
                certificate: None,
                preproc: blasted.preproc_stats,
                invariant_clauses: blasted.invariant.clauses.len() as u32,
                invariant_constants: blasted.invariant.constants.len() as u32,
                paranoid: self.paranoid,
            };
        }

        let mut outcomes: Vec<Option<CheckOutcome>> = Vec::new();
        outcomes.resize_with(self.engines.len(), || None);
        let mut certifications: Vec<Option<CertifyReport>> = Vec::new();
        certifications.resize_with(self.engines.len(), || None);
        let mut winner_idx: Option<usize> = None;
        let mut winner_witnessed = false;
        let mut disagreement = false;
        // The checker's template: compiled raw (no preprocessing) and
        // lazily, only when a definite verdict actually arrives.
        let mut raw_tpl: Option<aig::TransitionTemplate> = None;

        let (tx, rx) = mpsc::channel::<(usize, CheckOutcome)>();
        thread::scope(|scope| {
            for (i, (name, checker)) in self.engines.iter().enumerate() {
                let tx = tx.clone();
                let checker = checker.as_ref();
                thread::Builder::new()
                    .name(format!("portfolio-{name}"))
                    .spawn_scoped(scope, move || {
                        // A panicking member must degrade the race, not
                        // kill it: catch the unwind and report it as a
                        // crash so the seat stays visible in the
                        // breakdown (and the dispatcher keeps its
                        // every-member-reports invariant).
                        let seat_started = Instant::now();
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            checker.check_blasted(ts, blasted)
                        }))
                        .unwrap_or_else(|_| {
                            CheckOutcome::finish(
                                Verdict::Unknown(Unknown::Crashed((*name).into())),
                                EngineStats::default(),
                                seat_started,
                            )
                        });
                        // The portfolio may already have dropped the
                        // receiver only if it panicked; ignore.
                        let _ = tx.send((i, out));
                    })
                    .expect("spawn portfolio worker");
            }
            drop(tx);
            // Collect every member: losers come back quickly once the
            // stop flag is up, so this also joins the race. When the
            // caller supplied their own stop flag, poll it and forward
            // a raise to the members.
            let recv_next = || match &self.external {
                None => rx.recv().ok(),
                Some(ext) => loop {
                    if ext.load(Ordering::Relaxed) {
                        self.stop.store(true, Ordering::Relaxed);
                    }
                    match rx.recv_timeout(std::time::Duration::from_millis(5)) {
                        Ok(msg) => break Some(msg),
                        Err(mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                    }
                },
            };
            while let Some((i, mut out)) = recv_next() {
                if !matches!(out.outcome, Verdict::Unknown(_)) {
                    // Certify before declaring a winner: the race is
                    // only called for answers whose witness survives
                    // the independent re-check (members without a
                    // witness are accepted uncertified).
                    let tpl = raw_tpl
                        .get_or_insert_with(|| aig::TransitionTemplate::compile(&blasted.sys));
                    let report = certify::certify_with_mode(&blasted.sys, tpl, &out, self.paranoid);
                    if !report.ok {
                        // Demote: withdraw the verdict, keep racing on
                        // the remaining seats.
                        let why = report.failure.clone().unwrap_or_default();
                        out.outcome = Verdict::Unknown(Unknown::CertificateFailed(why));
                        out.certificate = None;
                        certifications[i] = Some(report);
                    } else {
                        let witnessed = report.witnessed;
                        certifications[i] = Some(report);
                        match winner_idx {
                            None => {
                                winner_idx = Some(i);
                                winner_witnessed = witnessed;
                                // First certified verdict: call the
                                // race, cancel everyone still running.
                                self.stop.store(true, Ordering::Relaxed);
                            }
                            Some(w) => {
                                let agree = matches!(
                                    (
                                        &outcomes[w].as_ref().expect("winner stored").outcome,
                                        &out.outcome
                                    ),
                                    (Verdict::Safe, Verdict::Safe)
                                        | (Verdict::Unsafe(_), Verdict::Unsafe(_))
                                );
                                if !agree {
                                    if witnessed && !winner_witnessed {
                                        // Trust the certifying side: an
                                        // uncertified winner yields to a
                                        // contradicting checked witness.
                                        winner_idx = Some(i);
                                        winner_witnessed = true;
                                    } else {
                                        disagreement = true;
                                    }
                                }
                            }
                        }
                    }
                }
                outcomes[i] = Some(out);
            }
        });

        let mut stats = EngineStats::default();
        let mut engines = Vec::with_capacity(self.engines.len());
        for (((name, _), out), cert) in self.engines.iter().zip(outcomes).zip(certifications) {
            let out = out.expect("every portfolio worker reports");
            stats.sat_queries += out.stats.sat_queries;
            stats.conflicts += out.stats.conflicts;
            stats.reduces += out.stats.reduces;
            stats.deleted += out.stats.deleted;
            stats.arena_bytes += out.stats.arena_bytes;
            stats.arena_peak_bytes += out.stats.arena_peak_bytes;
            stats.act_recycled += out.stats.act_recycled;
            stats.proof_bytes += out.stats.proof_bytes;
            stats.proof_chains += out.stats.proof_chains;
            stats.ternary_drops += out.stats.ternary_drops;
            stats.lifted_lits += out.stats.lifted_lits;
            stats.lemmas_exported += out.stats.lemmas_exported;
            stats.lemmas_imported += out.stats.lemmas_imported;
            stats.sync_rounds += out.stats.sync_rounds;
            engines.push(EngineReport {
                name,
                outcome: out,
                winner: false,
                certify: cert,
            });
        }

        let verdict = match winner_idx {
            Some(w) => {
                engines[w].winner = true;
                stats.depth = engines[w].outcome.stats.depth;
                engines[w].outcome.outcome.clone()
            }
            None => {
                stats.depth = engines
                    .iter()
                    .map(|e| e.outcome.stats.depth)
                    .max()
                    .unwrap_or(0);
                Verdict::Unknown(merge_unknowns(&engines))
            }
        };
        stats.time = started.elapsed();
        blasted.stamp(&mut stats);
        PortfolioOutcome {
            verdict,
            stats,
            winner: winner_idx.map(|w| engines[w].name),
            certified: winner_witnessed,
            certificate: winner_idx.and_then(|w| engines[w].outcome.certificate.clone()),
            engines,
            disagreement,
            preproc: blasted.preproc_stats,
            invariant_clauses: blasted.invariant.clauses.len() as u32,
            invariant_constants: blasted.invariant.constants.len() as u32,
            paranoid: self.paranoid,
        }
    }
}

/// Picks the most informative `Unknown` reason when no member answered.
/// Priority: a withdrawn certificate (someone *claimed* an answer that
/// failed its check — the loudest alarm), then a crashed seat, then
/// timeout, bound reached, conflict limit, inherent incompleteness, and
/// finally "someone cancelled us" (which should not be the whole story
/// of an un-won race).
fn merge_unknowns(engines: &[EngineReport]) -> Unknown {
    fn rank(u: &Unknown) -> u8 {
        match u {
            Unknown::CertificateFailed(_) => 6,
            Unknown::Crashed(_) => 5,
            Unknown::Timeout => 4,
            Unknown::BoundReached => 3,
            Unknown::ConflictLimit => 2,
            Unknown::Inconclusive(_) => 1,
            Unknown::Cancelled => 0,
        }
    }
    engines
        .iter()
        .filter_map(|e| match &e.outcome.outcome {
            Verdict::Unknown(u) => Some(u),
            _ => None,
        })
        .max_by_key(|u| rank(u))
        .cloned()
        .unwrap_or(Unknown::Cancelled)
}

impl Checker for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let d = self.check_detailed(ts);
        CheckOutcome {
            outcome: d.verdict,
            stats: d.stats,
            certificate: d.certificate,
        }
    }

    /// A portfolio nested inside a larger race forwards the shared
    /// blast to its own members rather than re-blasting.
    fn check_blasted(&self, ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let d = self.check_detailed_blasted(ts, blasted);
        CheckOutcome {
            outcome: d.verdict,
            stats: d.stats,
            certificate: d.certificate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn unlimited(max_depth: u32) -> Budget {
        Budget {
            timeout: None,
            max_depth,
            ..Budget::default()
        }
    }

    #[test]
    fn portfolio_finds_bmc_winnable_bug() {
        // A counter bug at depth 6: pure reachability, the racing
        // provers cannot answer faster than the bug hunters.
        let ts = crate::bmc::tests::counter_ts(6, 8);
        let report = Portfolio::with_default_engines(Budget::default()).check_detailed(&ts);
        match &report.verdict {
            Verdict::Unsafe(trace) => {
                assert_eq!(trace.length(), 6, "bug at documented depth");
                let sys = aig::blast_system(&ts);
                assert!(trace.replays_on(&sys), "winning trace must replay");
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
        assert!(report.winner.is_some());
        assert!(!report.disagreement);
        assert_eq!(report.engines.len(), 4);
    }

    #[test]
    fn portfolio_proves_trap_where_plain_kind_diverges() {
        // The unreachable-loop design: k-induction *without* the
        // simple-path strengthening never converges on the bare
        // template (it hits its bound with counterexamples-to-induction
        // of every length), while PDR and interpolation prove it
        // directly. The portfolio must return Safe and the diverging
        // member must not be the winner. An *unstrengthened* blast pins
        // the divergence — see the companion test for what the mined
        // static invariant changes.
        let ts = crate::kind::tests::trap_ts();
        let blasted = Blasted::of_unstrengthened(&ts);
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(KInduction {
            budget: Budget {
                max_depth: 30,
                ..b.clone()
            },
            simple_path: false,
            ..KInduction::default()
        });
        p.push(Interpolation::new(b.clone()));
        p.push(Pdr::new(b));
        let report = p.check_detailed_blasted(&ts, &blasted);
        assert_eq!(report.verdict, Verdict::Safe);
        let w = report.winner.expect("someone wins");
        assert_ne!(w, "abc-kind", "diverging k-induction must not win");
        assert!(!report.disagreement);
        assert_eq!(report.invariant_clauses, 0, "unstrengthened blast");
    }

    #[test]
    fn static_invariant_rescues_plain_kind_on_trap() {
        // Same design, default (strengthened) blast: the mined
        // invariant pins the unreachable-loop states away, so even
        // k-induction without simple-path converges — the portfolio
        // result stays Safe, certified, with the strengthening counts
        // surfaced on the outcome.
        let ts = crate::kind::tests::trap_ts();
        let blasted = Blasted::of(&ts);
        assert!(blasted.invariant_certified);
        assert!(
            !blasted.invariant.clauses.is_empty(),
            "trap_ts has minable unreachable-state facts"
        );
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(KInduction {
            budget: Budget { max_depth: 30, ..b },
            simple_path: false,
            ..KInduction::default()
        });
        let report = p.check_detailed_blasted(&ts, &blasted);
        assert_eq!(report.verdict, Verdict::Safe);
        assert!(report.certified, "strengthened proof must still certify");
        assert!(report.invariant_clauses > 0);
        assert!(report.summary().contains("static invariant"));
    }

    /// A checker that never answers until it is interrupted: a
    /// deterministic stand-in for a diverging engine, used to pin down
    /// cancellation behaviour without SAT-solver timing noise.
    struct Grinder {
        budget: Budget,
    }

    impl Checker for Grinder {
        fn name(&self) -> &'static str {
            "grinder"
        }
        fn check(&self, _ts: &TransitionSystem) -> CheckOutcome {
            let started = Instant::now();
            loop {
                if let Some(u) = self.budget.interruption(started) {
                    return CheckOutcome::finish(
                        Verdict::Unknown(u),
                        EngineStats::default(),
                        started,
                    );
                }
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn losers_are_cancelled_when_winner_finishes() {
        // BMC finds the depth-2 bug almost instantly; the grinder would
        // spin forever (its budget has no timeout). Only cooperative
        // cancellation can end the run — and must do so quickly.
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(Bmc::new(b.clone()));
        p.push(Grinder { budget: b });
        let t0 = Instant::now();
        let report = p.check_detailed(&ts);
        assert!(report.verdict.is_unsafe());
        assert_eq!(report.winner, Some("bmc"));
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "losers must be cancelled, not awaited"
        );
        let grinder = report
            .engines
            .iter()
            .find(|e| e.name == "grinder")
            .expect("grinder reported");
        assert_eq!(
            grinder.outcome.outcome,
            Verdict::Unknown(Unknown::Cancelled),
            "loser must report cancellation, not timeout"
        );
    }

    #[test]
    fn cancelled_sat_engine_stops_within_one_check_interval() {
        // An engine whose budget's stop flag is already raised must
        // give up on its first check without doing real solver work.
        let ts = crate::kind::tests::trap_ts();
        let stop = Arc::new(AtomicBool::new(true));
        let budget = unlimited(4000).with_stop(stop);
        for out in [
            Bmc::new(budget.clone()).check(&ts),
            KInduction::new(budget.clone()).check(&ts),
            Interpolation::new(budget.clone()).check(&ts),
            Pdr::new(budget.clone()).check(&ts),
        ] {
            assert_eq!(out.outcome, Verdict::Unknown(Unknown::Cancelled));
            assert!(
                out.stats.conflicts <= 1,
                "a pre-cancelled engine must not accumulate conflicts: {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn external_stop_flag_cancels_whole_portfolio() {
        // A stop flag supplied on the portfolio's own budget must end
        // the race from outside: the grinder never answers and has no
        // timeout, so only the forwarded external raise can stop it.
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let outer = Arc::new(AtomicBool::new(false));
        let mut p = Portfolio::new(unlimited(4000).with_stop(outer.clone()));
        let b = p.engine_budget();
        p.push(Grinder { budget: b });
        let flag = outer.clone();
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            flag.store(true, Ordering::Relaxed);
        });
        let t0 = Instant::now();
        let report = p.check_detailed(&ts);
        raiser.join().unwrap();
        assert_eq!(report.verdict, Verdict::Unknown(Unknown::Cancelled));
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "external cancellation must end the race"
        );
    }

    /// A member that records which entry point the portfolio used.
    struct BlastProbe {
        shared: Arc<AtomicBool>,
    }

    impl Checker for BlastProbe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn check(&self, _ts: &TransitionSystem) -> CheckOutcome {
            CheckOutcome {
                outcome: Verdict::Unknown(Unknown::Inconclusive("probe".into())),
                stats: EngineStats::default(),
                certificate: None,
            }
        }
        fn check_blasted(&self, ts: &TransitionSystem, _blasted: &Blasted) -> CheckOutcome {
            self.shared.store(true, Ordering::Relaxed);
            self.check(ts)
        }
    }

    /// One `blast_system` call per portfolio run: the dispatching
    /// thread blasts once (thread-local counter), and every member is
    /// handed the shared blast through `check_blasted`.
    #[test]
    fn portfolio_blasts_once_and_shares_it() {
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let shared = Arc::new(AtomicBool::new(false));
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(Bmc::new(b));
        p.push(BlastProbe {
            shared: shared.clone(),
        });
        let before = aig::seq::blast_count();
        let report = p.check_detailed(&ts);
        assert_eq!(
            aig::seq::blast_count() - before,
            1,
            "exactly one blast on the dispatching thread"
        );
        assert!(report.verdict.is_unsafe());
        assert!(
            shared.load(Ordering::Relaxed),
            "members must be offered the shared blast"
        );
    }

    /// Every bit-level member reuses a pre-blasted system: handed a
    /// `Blasted`, none of them calls `blast_system` again (checked with
    /// the per-thread blast counter, engines run on this thread).
    #[test]
    fn engines_reuse_shared_blast_without_reblasting() {
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let blasted = Blasted::of(&ts);
        let budget = unlimited(4000);
        let before = aig::seq::blast_count();
        let outs = [
            Bmc::new(budget.clone()).check_blasted(&ts, &blasted),
            KInduction::new(budget.clone()).check_blasted(&ts, &blasted),
            Interpolation::new(budget.clone()).check_blasted(&ts, &blasted),
            Pdr::new(budget.clone()).check_blasted(&ts, &blasted),
        ];
        assert_eq!(
            aig::seq::blast_count(),
            before,
            "a shared blast must never be re-blasted"
        );
        for out in outs {
            assert!(out.outcome.is_unsafe(), "got {:?}", out.outcome);
        }
    }

    #[test]
    fn empty_portfolio_is_inconclusive() {
        let ts = crate::bmc::tests::counter_ts(1, 4);
        let report = Portfolio::new(Budget::default()).check_detailed(&ts);
        assert!(matches!(
            report.verdict,
            Verdict::Unknown(Unknown::Inconclusive(_))
        ));
        assert!(report.winner.is_none());
    }

    #[test]
    fn merge_prefers_informative_reasons() {
        let mk = |u: Unknown| EngineReport {
            name: "x",
            outcome: CheckOutcome {
                outcome: Verdict::Unknown(u),
                stats: EngineStats::default(),
                certificate: None,
            },
            winner: false,
            certify: None,
        };
        assert_eq!(
            merge_unknowns(&[mk(Unknown::Cancelled), mk(Unknown::Timeout)]),
            Unknown::Timeout
        );
        assert_eq!(
            merge_unknowns(&[mk(Unknown::Cancelled), mk(Unknown::BoundReached)]),
            Unknown::BoundReached
        );
        assert_eq!(
            merge_unknowns(&[mk(Unknown::Cancelled), mk(Unknown::Cancelled)]),
            Unknown::Cancelled
        );
        assert_eq!(
            merge_unknowns(&[
                mk(Unknown::Timeout),
                mk(Unknown::Crashed("x".into())),
                mk(Unknown::CertificateFailed("why".into())),
            ]),
            Unknown::CertificateFailed("why".into())
        );
    }

    #[test]
    fn portfolio_agrees_with_best_single_engine() {
        // Same-verdict check on designs with known ground truth: the
        // portfolio answer must match what a lone engine derives.
        let bug = crate::bmc::tests::counter_ts(3, 8);
        let p = Portfolio::with_default_engines(Budget::default());
        let solo = Bmc::new(Budget::default()).check(&bug);
        let port = p.check(&bug);
        match (&solo.outcome, &port.outcome) {
            (Verdict::Unsafe(a), Verdict::Unsafe(b)) => {
                assert_eq!(a.length(), b.length());
            }
            other => panic!("expected matching Unsafe verdicts, got {other:?}"),
        }

        let safe = crate::kind::tests::trap_ts();
        let p = Portfolio::with_default_engines(Budget::default());
        assert_eq!(p.check(&safe).outcome, Verdict::Safe);
    }

    #[test]
    fn winner_certificate_is_checked_and_exposed() {
        // A safe design through the default engines: the winner's
        // witness must survive the independent re-check and surface on
        // the portfolio outcome.
        let ts = crate::kind::tests::trap_ts();
        let report = Portfolio::with_default_engines(Budget::default()).check_detailed(&ts);
        assert_eq!(report.verdict, Verdict::Safe);
        assert!(
            report.certified,
            "winning Safe must carry a checked witness"
        );
        assert!(report.certificate.is_some());
        let w = report.engines.iter().find(|e| e.winner).expect("winner");
        let cert = w.certify.as_ref().expect("winner was certified");
        assert!(cert.ok && cert.witnessed);
    }

    /// A seat that panics mid-check: the portfolio must isolate the
    /// unwind, report the seat as crashed, and still win the race with
    /// a healthy member.
    struct PanicSeat;

    impl Checker for PanicSeat {
        fn name(&self) -> &'static str {
            "panic-seat"
        }
        fn check(&self, _ts: &TransitionSystem) -> CheckOutcome {
            panic!("injected seat failure");
        }
    }

    #[test]
    fn panicking_seat_degrades_to_crashed_and_race_continues() {
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(PanicSeat);
        p.push(Bmc::new(b));
        let report = p.check_detailed(&ts);
        assert!(report.verdict.is_unsafe());
        assert_eq!(report.winner, Some("bmc"));
        assert!(report.certified, "bug trace must replay");
        assert!(!report.disagreement);
        let crashed = report
            .engines
            .iter()
            .find(|e| e.name == "panic-seat")
            .expect("crashed seat reported");
        assert_eq!(
            crashed.outcome.outcome,
            Verdict::Unknown(Unknown::Crashed("panic-seat".into())),
            "panic must surface as a crash, not kill the portfolio"
        );
    }

    /// A seat that lies: claims a verdict it cannot witness correctly.
    struct Liar {
        verdict: Verdict,
        certificate: Option<Certificate>,
    }

    impl Checker for Liar {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn check(&self, _ts: &TransitionSystem) -> CheckOutcome {
            let mut out =
                CheckOutcome::finish(self.verdict.clone(), EngineStats::default(), Instant::now());
            out.certificate = self.certificate.clone();
            out
        }
    }

    #[test]
    fn lying_safe_seat_is_demoted_and_real_engine_prevails() {
        // The design is unsafe; the liar instantly claims Safe with a
        // trivial "true" invariant. The check rejects it (safety
        // obligation fails), the claim is demoted, and BMC's real
        // counterexample wins — with no disagreement alarm, because a
        // withdrawn verdict is not a verdict.
        let ts = crate::bmc::tests::counter_ts(2, 8);
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(Liar {
            verdict: Verdict::Safe,
            certificate: Some(Certificate::Clausal(certify::ClausalInvariant {
                clauses: Vec::new(),
            })),
        });
        p.push(Bmc::new(b));
        let report = p.check_detailed(&ts);
        assert!(report.verdict.is_unsafe(), "got {:?}", report.verdict);
        assert_eq!(report.winner, Some("bmc"));
        assert!(report.certified);
        assert!(
            !report.disagreement,
            "a demoted claim must not raise the alarm"
        );
        let liar = report.engines.iter().find(|e| e.name == "liar").unwrap();
        assert!(matches!(
            liar.outcome.outcome,
            Verdict::Unknown(Unknown::CertificateFailed(_))
        ));
        assert!(
            liar.certify.as_ref().is_some_and(|c| !c.ok),
            "failed check must be recorded on the seat"
        );
    }

    #[test]
    fn paranoid_portfolio_certifies_with_replayed_proofs() {
        // Same safe design as the plain certification test, but with
        // the paranoid knob on: the winner must still certify, the
        // obligation solvers' resolution proofs must have been
        // replayed, and the summary must surface the proof line.
        let ts = crate::kind::tests::trap_ts();
        let report = Portfolio::with_default_engines(Budget::default())
            .with_paranoid(true)
            .check_detailed(&ts);
        assert_eq!(report.verdict, Verdict::Safe);
        assert!(report.certified, "paranoid pass must still certify");
        let w = report.engines.iter().find(|e| e.winner).expect("winner");
        let cert = w.certify.as_ref().expect("winner was certified");
        assert!(cert.ok && cert.witnessed);
        assert!(
            report.summary().contains("paranoid"),
            "summary must report the proof replay:\n{}",
            report.summary()
        );
    }

    #[test]
    fn lying_unsafe_seat_is_demoted_on_safe_design() {
        // The design is safe; the liar claims a bug with a garbage
        // trace. Replay rejects it and the provers' Safe wins.
        let ts = crate::kind::tests::trap_ts();
        let mut p = Portfolio::new(unlimited(4000));
        let b = p.engine_budget();
        p.push(Liar {
            verdict: Verdict::Unsafe(crate::result::Trace {
                states: vec![vec![true, true, true]],
                inputs: vec![vec![]],
                bad_index: 0,
            }),
            certificate: None,
        });
        p.push(Pdr::new(b));
        let report = p.check_detailed(&ts);
        assert_eq!(report.verdict, Verdict::Safe);
        assert_eq!(report.winner, Some("abc-pdr"));
        assert!(report.certified);
        assert!(!report.disagreement);
        let liar = report.engines.iter().find(|e| e.name == "liar").unwrap();
        assert!(matches!(
            liar.outcome.outcome,
            Verdict::Unknown(Unknown::CertificateFailed(_))
        ));
    }
}
