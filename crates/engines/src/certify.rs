//! Independent re-checking of verdict witnesses.
//!
//! A verdict you can re-check is worth more than a verdict you must
//! trust: this module turns every definite engine answer into a
//! *certifying* one (cf. McConnell et al., "Certifying Algorithms",
//! and rIC3's frame-wise invariant re-check). The checker is
//! deliberately decoupled from the engines — it recompiles the **raw,
//! un-preprocessed** transition template with
//! [`aig::TransitionTemplate::compile`] and discharges every
//! obligation in a **fresh, independent** [`satb::Solver`], so a bug
//! in an engine's incremental solver reuse, activation-literal
//! bookkeeping, or the SatELite preprocessing cannot silently
//! propagate into a certified answer.
//!
//! # Certificate format
//!
//! A Safe answer carries a [`Certificate`] in
//! [`CheckOutcome::certificate`](crate::CheckOutcome::certificate):
//!
//! * [`Certificate::Clausal`] — an inductive invariant as a
//!   conjunction of clauses over latch variables, each clause a
//!   disjunction of `(latch index, polarity)` literals. PDR exports
//!   the clauses of its fixpoint frame `F_i = F_{i+1}` (all cubes
//!   stored at levels `>= i`, negated).
//! * [`Certificate::Formula`] — an inductive invariant as an AIG
//!   formula: a private [`aig::Aig`] (node ids aligned with the
//!   checked system, so latch-output CIs address the state bits) plus
//!   the root literal. The interpolation engine exports its fixpoint
//!   `r_acc = init ∨ itp_1 ∨ … ∨ itp_n`.
//! * [`Certificate::KInductive`] — the strengthening is *temporal*
//!   rather than a state predicate: the property is `k`-inductive
//!   (optionally under simple-path constraints). The checker re-runs
//!   the full base and step obligations from scratch.
//!
//! An Unsafe answer needs no separate certificate: the
//! [`Trace`](crate::Trace) inside the verdict **is** the witness, and
//! [`certify`] re-simulates it on the bit-level netlist via the
//! `aig` evaluator ([`Trace::replays_on`](crate::Trace::replays_on)).
//!
//! # Check obligations
//!
//! For an invariant certificate `Inv` the checker discharges, clause
//! at a time, the three standard obligations against the raw template
//! (constraints are asserted in every instantiated frame, so the
//! constrained-transition semantics of the engines carries over):
//!
//! 1. **Initiation** — `Init ⇒ Inv`: for every clause `c`,
//!    `Init ∧ ¬c` is UNSAT. Checked on a solver *without* the other
//!    clauses asserted, so one bad clause cannot be masked by the
//!    rest of the invariant.
//! 2. **Consecution** — `Inv ∧ T ⇒ Inv′`: with all clauses asserted
//!    on the current-state side of one raw frame, for every clause
//!    `c`, `Inv ∧ T ∧ ¬c′` is UNSAT.
//! 3. **Safety** — `Inv ⇒ ¬Bad`: `Inv ∧ T ∧ any_bad` is UNSAT (the
//!    frame's bad outputs are evaluated under the same constraint
//!    semantics the engines used).
//!
//! For [`Certificate::KInductive`] with bound `k` the obligations
//! are: no counterexample of length `0..=k` from the initial states
//! (base, one incremental chain), and no path of `k+1` free states
//! with the first `k` good, the last bad — pairwise distinct when
//! `simple_path` is set (step). Soundness is the standard
//! shortest-counterexample argument: a minimal-length initialized
//! path to a bad state has pairwise-distinct, internally-good states,
//! so its length-`k` suffix would satisfy the step premise. When the
//! engine ran under a static strengthening invariant (see
//! [`certify_invariant`]), the certificate carries those clauses: the
//! checker first discharges their initiation and consecution against
//! the raw template, then asserts them on every base and step frame —
//! sound because every state of a shortest counterexample is
//! reachable, and certified-inductive clauses hold in every reachable
//! state.
//!
//! A passing check proves the *answer*, not the engine: whatever
//! formula the obligations were discharged for is a genuine inductive
//! strengthening, so `Safe` is true even if the certificate was
//! produced by a buggy (or adversarial) engine. A failing check never
//! proves the answer wrong — it only withdraws the evidence, which is
//! why the portfolio demotes a failed certificate to
//! [`Unknown::CertificateFailed`](crate::Unknown::CertificateFailed)
//! instead of flipping the verdict.
//!
//! # Paranoid mode
//!
//! The obligations above still trust the *checker's own* solver to
//! answer UNSAT correctly. [`certify_with_mode`] with `paranoid =
//! true` removes that last trust step: every obligation solver runs
//! with resolution-proof logging, and after its obligations are
//! discharged the recorded proof is replayed from scratch by the
//! independent static analyzer in [`satb::proofcheck`] (antecedent
//! existence, pivot polarity, learnt-clause cross-check against the
//! live clause database). A refutation that fails the replay fails
//! the certificate — [`CertifyReport::proof_chains`] counts the
//! machine-checked chains backing a paranoid pass.

use crate::result::{CheckOutcome, Verdict};
use aig::{Aig, AigLit, AigSystem, FrameEncoder, TransitionTemplate};
use satb::{Lit, Part, SolveResult, Solver};
use std::fmt;
use std::time::{Duration, Instant};

/// A clause over latch variables: each literal is `(latch index,
/// polarity)`, true when the latch holds `polarity`.
pub type LatchClause = Vec<(usize, bool)>;

/// An inductive invariant in clausal form (PDR's fixpoint frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClausalInvariant {
    /// The invariant is the conjunction of these clauses (an empty
    /// list is the invariant `true`, claiming no state is bad).
    pub clauses: Vec<LatchClause>,
}

/// An inductive invariant as an AIG formula (interpolation's fixpoint).
#[derive(Clone, Debug)]
pub struct FormulaInvariant {
    /// Private combinational logic; latch-output CI literals of the
    /// certified system are valid in it (node ids are preserved by
    /// the engine's scratch clone).
    pub aig: Aig,
    /// Root literal: the invariant predicate over the latch CIs.
    pub root: AigLit,
}

/// A Safe-verdict witness, re-checkable by [`certify`]. See the
/// [module docs](self) for the format and the obligations.
#[derive(Clone, Debug)]
pub enum Certificate {
    /// Clauses over latch variables whose conjunction is a 1-step
    /// inductive invariant.
    Clausal(ClausalInvariant),
    /// An AIG-formula 1-step inductive invariant.
    Formula(FormulaInvariant),
    /// The property is `k`-inductive (under simple-path constraints
    /// when `simple_path` is set, and under the carried strengthening
    /// invariant when `invariant` is non-empty).
    KInductive {
        /// The induction depth the engine proved at.
        k: u32,
        /// Whether the step obligation may assume pairwise-distinct
        /// states (required for completeness on lasso-shaped designs).
        simple_path: bool,
        /// Static strengthening clauses the engine assumed on every
        /// frame. The checker re-certifies them (initiation +
        /// consecution) before admitting them into the obligations.
        invariant: Vec<LatchClause>,
    },
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::Clausal(inv) => {
                write!(f, "inductive invariant ({} clauses)", inv.clauses.len())
            }
            Certificate::Formula(_) => write!(f, "inductive invariant (formula)"),
            Certificate::KInductive {
                k,
                simple_path,
                invariant,
            } => {
                write!(
                    f,
                    "{k}-inductive{}",
                    if *simple_path { " (simple-path)" } else { "" }
                )?;
                if !invariant.is_empty() {
                    write!(f, " + {} strengthening clauses", invariant.len())?;
                }
                Ok(())
            }
        }
    }
}

/// Result of one [`certify`] run.
#[derive(Clone, Debug)]
pub struct CertifyReport {
    /// Whether the outcome survived: its witness checked, or it had
    /// none to check (Unknown verdicts, witness-less Safe answers).
    pub ok: bool,
    /// Whether there was a witness to check (`false` for Unknown
    /// verdicts and Safe answers from engines that cannot produce
    /// one — those are *accepted*, but not *certified*).
    pub witnessed: bool,
    /// Number of obligations discharged (clause checks, base/step
    /// solves, or 1 for a trace replay).
    pub obligations: usize,
    /// Why the check failed, when it did.
    pub failure: Option<String>,
    /// Resolution chains replayed by the independent proof checker
    /// (non-zero only under [`certify_with_mode`]'s paranoid mode).
    pub proof_chains: u64,
    /// Wall-clock time spent checking.
    pub time: Duration,
}

impl CertifyReport {
    fn passed(witnessed: bool, obligations: usize, started: Instant) -> CertifyReport {
        CertifyReport {
            ok: true,
            witnessed,
            obligations,
            failure: None,
            proof_chains: 0,
            time: started.elapsed(),
        }
    }

    fn failed(obligations: usize, why: String, started: Instant) -> CertifyReport {
        CertifyReport {
            ok: false,
            witnessed: true,
            obligations,
            failure: Some(why),
            proof_chains: 0,
            time: started.elapsed(),
        }
    }
}

/// Re-checks an outcome's witness against `sys`, recompiling the raw
/// transition template. See the [module docs](self) for what is
/// checked per verdict kind.
pub fn certify(sys: &AigSystem, outcome: &CheckOutcome) -> CertifyReport {
    let tpl = TransitionTemplate::compile(sys);
    certify_with(sys, &tpl, outcome)
}

/// Like [`certify`], but reusing an already-compiled **raw** template
/// (callers certifying several outcomes against the same design, e.g.
/// the portfolio). Passing a preprocessed template would defeat the
/// independence of the check — always hand in
/// [`aig::TransitionTemplate::compile`] output.
pub fn certify_with(
    sys: &AigSystem,
    raw_tpl: &TransitionTemplate,
    outcome: &CheckOutcome,
) -> CertifyReport {
    certify_with_mode(sys, raw_tpl, outcome, false)
}

/// Like [`certify_with`], with an explicit trust level. With `paranoid
/// = false` this is exactly [`certify_with`]. With `paranoid = true`
/// every obligation solver logs a resolution proof, and after its
/// obligations are discharged the proof is replayed from scratch by
/// [`satb::proofcheck`]; a rejected replay fails the certificate. See
/// the [module docs](self#paranoid-mode).
pub fn certify_with_mode(
    sys: &AigSystem,
    raw_tpl: &TransitionTemplate,
    outcome: &CheckOutcome,
    paranoid: bool,
) -> CertifyReport {
    let started = Instant::now();
    let mut par = Paranoia::new(paranoid);
    let mut rep = match &outcome.outcome {
        Verdict::Unknown(_) => CertifyReport::passed(false, 0, started),
        Verdict::Unsafe(trace) => {
            if trace.replays_on(sys) {
                CertifyReport::passed(true, 1, started)
            } else {
                CertifyReport::failed(1, "trace does not replay to a fired bad".into(), started)
            }
        }
        Verdict::Safe => match &outcome.certificate {
            None => CertifyReport::passed(false, 0, started),
            Some(Certificate::Clausal(inv)) => match check_clausal(sys, raw_tpl, inv, &mut par) {
                Ok(n) => CertifyReport::passed(true, n, started),
                Err((n, why)) => CertifyReport::failed(n, why, started),
            },
            Some(Certificate::Formula(inv)) => match check_formula(sys, raw_tpl, inv, &mut par) {
                Ok(n) => CertifyReport::passed(true, n, started),
                Err((n, why)) => CertifyReport::failed(n, why, started),
            },
            Some(Certificate::KInductive {
                k,
                simple_path,
                invariant,
            }) => match check_kinductive(sys, raw_tpl, *k, *simple_path, invariant, &mut par) {
                Ok(n) => CertifyReport::passed(true, n, started),
                Err((n, why)) => CertifyReport::failed(n, why, started),
            },
        },
    };
    rep.proof_chains = par.chains;
    rep
}

/// Certifies a mined strengthening invariant (e.g. the output of
/// [`aig::analyze`]) against the **raw** template: initiation and
/// consecution for every clause, with an independent solver. There is
/// deliberately **no safety obligation** — a strengthening invariant
/// constrains the reachable states but makes no claim about the bad
/// outputs; that is exactly what lets every engine assert it on any
/// frame whose states are known reachable (or explicitly constrained
/// to the invariant) without changing the verdict.
pub fn certify_invariant(
    sys: &AigSystem,
    raw_tpl: &TransitionTemplate,
    clauses: &[LatchClause],
) -> CertifyReport {
    certify_invariant_with_mode(sys, raw_tpl, clauses, false)
}

/// Like [`certify_invariant`], with an explicit trust level (see
/// [`certify_with_mode`] for what `paranoid` adds).
pub fn certify_invariant_with_mode(
    sys: &AigSystem,
    raw_tpl: &TransitionTemplate,
    clauses: &[LatchClause],
    paranoid: bool,
) -> CertifyReport {
    let started = Instant::now();
    let mut par = Paranoia::new(paranoid);
    let mut rep = match check_invariant_clauses(sys, raw_tpl, clauses, &mut par) {
        Ok(n) => CertifyReport::passed(!clauses.is_empty(), n, started),
        Err((n, why)) => CertifyReport::failed(n, why, started),
    };
    rep.proof_chains = par.chains;
    rep
}

/// Paranoid-mode state threaded through the obligation checkers: when
/// `on`, every obligation solver logs a resolution proof and is
/// audited by [`satb::proofcheck`] before retirement.
struct Paranoia {
    on: bool,
    chains: u64,
}

impl Paranoia {
    fn new(on: bool) -> Paranoia {
        Paranoia { on, chains: 0 }
    }

    /// A fresh obligation solver, proof-logging when paranoid.
    fn solver(&self) -> Solver {
        if self.on {
            Solver::with_proof()
        } else {
            Solver::new()
        }
    }

    /// Replays the solver's recorded proof with the independent
    /// checker; rejects the certificate when the replay finds a bad
    /// chain or a live clause that does not match its derivation.
    fn audit(&mut self, s: &Solver) -> Result<(), String> {
        if let Some(rep) = s.check_proof() {
            self.chains += rep.chains_checked;
            if !rep.ok() {
                return Err(format!(
                    "paranoid proof replay rejected: {}",
                    rep.first_failure().unwrap_or_else(|| "unknown".into())
                ));
            }
        }
        Ok(())
    }
}

/// Maps a latch-variable clause onto frame literals (shared with the
/// engines, which assert strengthening clauses on every frame).
pub(crate) fn clause_on(clause: &LatchClause, latch_lits: &[Lit]) -> Vec<Lit> {
    clause
        .iter()
        .map(|&(i, v)| if v { latch_lits[i] } else { !latch_lits[i] })
        .collect()
}

/// The negation of a latch-variable clause as assumptions (one
/// negated literal each) over frame literals.
fn negated_clause_on(clause: &LatchClause, latch_lits: &[Lit]) -> Vec<Lit> {
    clause
        .iter()
        .map(|&(i, v)| if v { !latch_lits[i] } else { latch_lits[i] })
        .collect()
}

type CheckResult = Result<usize, (usize, String)>;

fn check_clausal(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    inv: &ClausalInvariant,
    par: &mut Paranoia,
) -> CheckResult {
    let n = sys.latches.len();
    let mut done = 0usize;
    for (ci, clause) in inv.clauses.iter().enumerate() {
        if let Some(&(i, _)) = clause.iter().find(|&&(i, _)| i >= n) {
            return Err((done, format!("clause #{ci} names latch {i} of {n}")));
        }
    }

    // Initiation, on a solver holding nothing but the reset values:
    // each clause must be checked without the others, or a clause the
    // initial states escape could hide behind one they satisfy.
    let mut init = par.solver();
    let vars: Vec<Lit> = (0..n).map(|_| Lit::pos(init.new_var())).collect();
    for (latch, &l) in sys.latches.iter().zip(&vars) {
        if let Some(iv) = latch.init {
            init.add_clause(&[if iv { l } else { !l }]);
        }
    }
    for (ci, clause) in inv.clauses.iter().enumerate() {
        match init.solve_with(&negated_clause_on(clause, &vars)) {
            SolveResult::Unsat => done += 1,
            _ => return Err((done, format!("initiation fails: init ⊄ clause #{ci}"))),
        }
    }
    par.audit(&init).map_err(|why| (done, why))?;

    // Consecution and safety share one raw frame with the whole
    // invariant asserted on the current-state side.
    let mut s = par.solver();
    let frame = tpl.instantiate(&mut s, Part::A, 0);
    for clause in &inv.clauses {
        s.add_clause(&clause_on(clause, &frame.latch_cur));
    }
    for (ci, clause) in inv.clauses.iter().enumerate() {
        match s.solve_with(&negated_clause_on(clause, &frame.latch_next)) {
            SolveResult::Unsat => done += 1,
            _ => return Err((done, format!("consecution fails: Inv ∧ T ⇏ clause #{ci}′"))),
        }
    }
    match s.solve_with(&[frame.any_bad]) {
        SolveResult::Unsat => done += 1,
        _ => return Err((done, "safety fails: Inv admits a bad state".into())),
    }
    par.audit(&s).map_err(|why| (done, why))?;
    Ok(done)
}

fn check_formula(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    inv: &FormulaInvariant,
    par: &mut Paranoia,
) -> CheckResult {
    let mut s = par.solver();
    let frame = tpl.instantiate(&mut s, Part::A, 0);
    // Two encoders over the certificate's private AIG: one maps the
    // latch-output CIs onto the frame's current-state literals, the
    // other onto its next-state literals, yielding Inv and Inv′ over
    // the same raw transition frame.
    let mut enc_cur = FrameEncoder::new();
    let mut enc_next = FrameEncoder::new();
    for (latch, (&c, &nx)) in sys
        .latches
        .iter()
        .zip(frame.latch_cur.iter().zip(&frame.latch_next))
    {
        enc_cur.bind(latch.output, c);
        enc_next.bind(latch.output, nx);
    }
    let inv_cur = enc_cur.encode(&inv.aig, &mut s, inv.root, Part::A);
    let inv_next = enc_next.encode(&inv.aig, &mut s, inv.root, Part::A);

    // Initiation: reset values as assumptions (not units — the same
    // solver must later check consecution from arbitrary Inv states).
    let mut assumptions: Vec<Lit> = Vec::new();
    for (latch, &l) in sys.latches.iter().zip(&frame.latch_cur) {
        if let Some(iv) = latch.init {
            assumptions.push(if iv { l } else { !l });
        }
    }
    assumptions.push(!inv_cur);
    let mut done = 0usize;
    match s.solve_with(&assumptions) {
        SolveResult::Unsat => done += 1,
        _ => return Err((done, "initiation fails: init ⊄ Inv".into())),
    }
    match s.solve_with(&[inv_cur, !inv_next]) {
        SolveResult::Unsat => done += 1,
        _ => return Err((done, "consecution fails: Inv ∧ T ⇏ Inv′".into())),
    }
    match s.solve_with(&[inv_cur, frame.any_bad]) {
        SolveResult::Unsat => done += 1,
        _ => return Err((done, "safety fails: Inv admits a bad state".into())),
    }
    par.audit(&s).map_err(|why| (done, why))?;
    Ok(done)
}

/// Initiation + consecution for a set of strengthening clauses (no
/// safety — see [`certify_invariant`]).
fn check_invariant_clauses(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    clauses: &[LatchClause],
    par: &mut Paranoia,
) -> CheckResult {
    let n = sys.latches.len();
    let mut done = 0usize;
    for (ci, clause) in clauses.iter().enumerate() {
        if let Some(&(i, _)) = clause.iter().find(|&&(i, _)| i >= n) {
            return Err((
                done,
                format!("invariant clause #{ci} names latch {i} of {n}"),
            ));
        }
        if clause.is_empty() {
            return Err((done, format!("invariant clause #{ci} is empty (false)")));
        }
    }

    // Initiation, each clause on its own (reset units only).
    let mut init = par.solver();
    let vars: Vec<Lit> = (0..n).map(|_| Lit::pos(init.new_var())).collect();
    for (latch, &l) in sys.latches.iter().zip(&vars) {
        if let Some(iv) = latch.init {
            init.add_clause(&[if iv { l } else { !l }]);
        }
    }
    for (ci, clause) in clauses.iter().enumerate() {
        match init.solve_with(&negated_clause_on(clause, &vars)) {
            SolveResult::Unsat => done += 1,
            _ => {
                return Err((
                    done,
                    format!("invariant initiation fails: init ⊄ clause #{ci}"),
                ))
            }
        }
    }
    par.audit(&init).map_err(|why| (done, why))?;

    // Consecution: the whole set asserted on the current-state side of
    // one raw frame, every clause refuted on the next-state side.
    let mut s = par.solver();
    let frame = tpl.instantiate(&mut s, Part::A, 0);
    for clause in clauses {
        s.add_clause(&clause_on(clause, &frame.latch_cur));
    }
    for (ci, clause) in clauses.iter().enumerate() {
        match s.solve_with(&negated_clause_on(clause, &frame.latch_next)) {
            SolveResult::Unsat => done += 1,
            _ => {
                return Err((
                    done,
                    format!("invariant consecution fails: Inv ∧ T ⇏ clause #{ci}′"),
                ))
            }
        }
    }
    par.audit(&s).map_err(|why| (done, why))?;
    Ok(done)
}

fn check_kinductive(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    k: u32,
    simple_path: bool,
    inv: &[LatchClause],
    par: &mut Paranoia,
) -> CheckResult {
    let k = k as usize;

    // The strengthening clauses must themselves be inductive before
    // they may constrain any frame below.
    let mut done = check_invariant_clauses(sys, tpl, inv, par)?;

    // Base: no counterexample of length 0..=k from the initial states.
    // The invariant holds in every reachable state (just certified),
    // so asserting it on initialized frames cannot hide a real bug.
    {
        let mut s = par.solver();
        let mut prev = tpl.instantiate(&mut s, Part::A, 0);
        prev.assert_init(sys, &mut s);
        for depth in 0..=k {
            if depth > 0 {
                prev =
                    tpl.instantiate_bound(&mut s, Part::A, depth as u32, &prev.latch_next.clone());
            }
            for clause in inv {
                s.add_clause(&clause_on(clause, &prev.latch_cur));
            }
            match s.solve_with(&[prev.any_bad]) {
                SolveResult::Unsat => {
                    s.add_clause(&[!prev.any_bad]);
                    done += 1;
                }
                _ => return Err((done, format!("base fails: bad reachable at depth {depth}"))),
            }
        }
        par.audit(&s).map_err(|why| (done, why))?;
    }

    // Step: no free path of k+1 states with the first k good and the
    // last bad (pairwise distinct when the engine relied on it, inside
    // the invariant when the engine assumed it — sound because every
    // state of a shortest counterexample's suffix is reachable).
    let mut s = par.solver();
    let mut frames = vec![tpl.instantiate(&mut s, Part::A, 0)];
    for j in 1..=k {
        let cur = frames[j - 1].latch_next.clone();
        frames.push(tpl.instantiate_bound(&mut s, Part::A, j as u32, &cur));
    }
    for f in &frames {
        for clause in inv {
            s.add_clause(&clause_on(clause, &f.latch_cur));
        }
    }
    for f in frames.iter().take(k) {
        s.add_clause(&[!f.any_bad]);
    }
    if simple_path {
        for i in 0..k {
            for j in (i + 1)..=k {
                // d_l → (state_i[l] ≠ state_j[l]); some d_l must hold.
                let mut differs: Vec<Lit> = Vec::with_capacity(sys.latches.len());
                for (&a, &b) in frames[i].latch_cur.iter().zip(&frames[j].latch_cur) {
                    let d = Lit::pos(s.new_var());
                    s.add_clause(&[!d, a, b]);
                    s.add_clause(&[!d, !a, !b]);
                    differs.push(d);
                }
                s.add_clause(&differs);
            }
        }
    }
    match s.solve_with(&[frames[k].any_bad]) {
        SolveResult::Unsat => done += 1,
        _ => {
            return Err((
                done,
                format!(
                    "step fails: property is not {k}-inductive{}",
                    if simple_path {
                        " under simple-path"
                    } else {
                        ""
                    }
                ),
            ))
        }
    }
    par.audit(&s).map_err(|why| (done, why))?;
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{Budget, Trace, Unknown};
    use crate::{Checker, EngineStats};
    use rtlir::{Sort, TransitionSystem};
    use std::time::Instant;

    /// A 4-bit counter saturating at 5; safe against `count > 5`.
    fn saturating_counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(4));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(4, 5);
        let one = ts.pool_mut().constv(4, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at, sv, inc);
        let zero = ts.pool_mut().constv(4, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        ts
    }

    /// A 3-bit counter that overflows into the bad region: unsafe.
    fn overflowing_counter() -> TransitionSystem {
        let mut ts = TransitionSystem::new("overflow");
        let s = ts.add_state("count", Sort::Bv(3));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(3, 1);
        let next = ts.pool_mut().add(sv, one);
        let zero = ts.pool_mut().constv(3, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let lim = ts.pool_mut().constv(3, 6);
        let bad = ts.pool_mut().uge(sv, lim);
        ts.add_bad(bad, "too big");
        ts
    }

    fn outcome_with(
        sys: &aig::AigSystem,
        verdict: Verdict,
        cert: Option<Certificate>,
    ) -> CheckOutcome {
        let _ = sys;
        let mut out = CheckOutcome::finish(verdict, EngineStats::default(), Instant::now());
        out.certificate = cert;
        out
    }

    #[test]
    fn unknown_and_witnessless_safe_pass_unwitnessed() {
        let sys = aig::blast_system(&saturating_counter());
        let out = outcome_with(&sys, Verdict::Unknown(Unknown::Timeout), None);
        let rep = certify(&sys, &out);
        assert!(rep.ok && !rep.witnessed);
        let out = outcome_with(&sys, Verdict::Safe, None);
        let rep = certify(&sys, &out);
        assert!(rep.ok && !rep.witnessed && rep.obligations == 0);
    }

    #[test]
    fn engine_certificates_check_and_forgeries_fail() {
        let ts = saturating_counter();
        let sys = aig::blast_system(&ts);

        // Every certifying engine's Safe answer must check.
        let engines: Vec<Box<dyn Checker>> = vec![
            Box::new(crate::pdr::Pdr::new(Budget::default())),
            Box::new(crate::pdr_baseline::PerFramePdr::new(Budget::default())),
            Box::new(crate::itp::Interpolation::new(Budget::default())),
            Box::new(crate::kind::KInduction::new(Budget::default())),
        ];
        for e in &engines {
            let out = e.check(&ts);
            assert_eq!(out.outcome, Verdict::Safe, "{} not Safe", e.name());
            let cert = out
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("{} returned Safe without a certificate", e.name()));
            let rep = certify(&sys, &out);
            assert!(
                rep.ok && rep.witnessed,
                "{} certificate [{}] rejected: {:?}",
                e.name(),
                cert,
                rep.failure
            );
            assert!(rep.obligations >= 1);
        }

        // A forged clausal invariant that misses the bad region fails
        // safety; one the initial state escapes fails initiation.
        let tautology = ClausalInvariant { clauses: vec![] };
        let out = outcome_with(&sys, Verdict::Safe, Some(Certificate::Clausal(tautology)));
        let rep = certify(&sys, &out);
        assert!(!rep.ok, "invariant `true` must fail safety here");
        assert!(rep.failure.as_deref().unwrap_or("").contains("safety"));

        let excludes_init = ClausalInvariant {
            // Single clause `count[0] = 1`: initial state 0 escapes.
            clauses: vec![vec![(0, true)]],
        };
        let out = outcome_with(
            &sys,
            Verdict::Safe,
            Some(Certificate::Clausal(excludes_init)),
        );
        let rep = certify(&sys, &out);
        assert!(!rep.ok);
        assert!(rep.failure.as_deref().unwrap_or("").contains("initiation"));

        // A k-induction claim at a too-small k fails its step check.
        let out = outcome_with(
            &sys,
            Verdict::Safe,
            Some(Certificate::KInductive {
                k: 0,
                simple_path: false,
                invariant: vec![],
            }),
        );
        let rep = certify(&sys, &out);
        assert!(!rep.ok);
        assert!(rep.failure.as_deref().unwrap_or("").contains("step"));

        // A k-induction claim propped up by a *non-inductive* forged
        // strengthening must fail the invariant obligations, not be
        // silently assumed.
        let out = outcome_with(
            &sys,
            Verdict::Safe,
            Some(Certificate::KInductive {
                k: 0,
                simple_path: false,
                // `count[0] = 0` is not inductive: 0 steps to 1.
                invariant: vec![vec![(0, false)]],
            }),
        );
        let rep = certify(&sys, &out);
        assert!(!rep.ok);
        assert!(rep
            .failure
            .as_deref()
            .unwrap_or("")
            .contains("invariant consecution"));
    }

    #[test]
    fn invariant_certification_checks_initiation_and_consecution() {
        let ts = saturating_counter();
        let sys = aig::blast_system(&ts);
        let tpl = aig::TransitionTemplate::compile(&sys);

        // An empty invariant passes vacuously, unwitnessed.
        let rep = certify_invariant(&sys, &tpl, &[]);
        assert!(rep.ok && !rep.witnessed && rep.obligations == 0);

        // The mined invariant of the design itself must certify.
        let inv = aig::analyze(
            &sys,
            &tpl,
            &aig::AnalysisConfig::default(),
            &satb::Limits::default(),
        );
        let rep = certify_invariant(&sys, &tpl, &inv.clauses);
        assert!(rep.ok, "mined invariant rejected: {:?}", rep.failure);

        // Initiation forgery: the reset state (count = 0) escapes.
        let rep = certify_invariant(&sys, &tpl, &[vec![(0, true)]]);
        assert!(!rep.ok);
        assert!(rep.failure.as_deref().unwrap_or("").contains("initiation"));

        // Consecution forgery: bit 0 toggles while counting.
        let rep = certify_invariant(&sys, &tpl, &[vec![(0, false)]]);
        assert!(!rep.ok);
        assert!(rep.failure.as_deref().unwrap_or("").contains("consecution"));

        // Out-of-range and empty clauses are rejected up front.
        assert!(!certify_invariant(&sys, &tpl, &[vec![(99, true)]]).ok);
        assert!(!certify_invariant(&sys, &tpl, &[vec![]]).ok);
    }

    #[test]
    fn unsafe_traces_replay_and_garbage_is_rejected() {
        let ts = overflowing_counter();
        let sys = aig::blast_system(&ts);
        let out = crate::bmc::Bmc::new(Budget::default()).check(&ts);
        assert!(out.outcome.is_unsafe());
        let rep = certify(&sys, &out);
        assert!(rep.ok && rep.witnessed, "BMC trace must replay");

        // A non-witnessing trace is rejected.
        let bogus = Trace {
            states: vec![vec![false; sys.latches.len()]],
            inputs: vec![vec![]],
            bad_index: 0,
        };
        let out = outcome_with(&sys, Verdict::Unsafe(bogus), None);
        let rep = certify(&sys, &out);
        assert!(!rep.ok);
    }

    #[test]
    fn formula_invariant_checks_directly() {
        // Hand-built formula invariant for the saturating counter:
        // count <= 5, i.e. ¬(count ≥ 6) = ¬(bit3 ∨ (bit2 ∧ bit1)).
        let ts = saturating_counter();
        let sys = aig::blast_system(&ts);
        let mut g = sys.aig.clone();
        let b = |i: usize| sys.latches[i].output;
        let ge6 = g.and(b(2), b(1));
        let over = g.or(ge6, b(3));
        let inv = FormulaInvariant {
            aig: g,
            root: !over,
        };
        let out = outcome_with(&sys, Verdict::Safe, Some(Certificate::Formula(inv.clone())));
        let rep = certify(&sys, &out);
        assert!(rep.ok, "count<=5 is inductive: {:?}", rep.failure);

        // The complement predicate is no invariant at all.
        let broken = FormulaInvariant {
            aig: inv.aig.clone(),
            root: !inv.root,
        };
        let out = outcome_with(&sys, Verdict::Safe, Some(Certificate::Formula(broken)));
        assert!(!certify(&sys, &out).ok);
    }
}
