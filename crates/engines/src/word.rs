//! Word-level k-induction (the paper's "EBMC-kind" configuration).
//!
//! Unlike the bit-level engine, the unrolling happens at the *word
//! level* using [`rtlir::Unroller`]: constants propagate through whole
//! words, ites collapse, and each bound's verification condition is
//! bit-blasted and solved from scratch. This mirrors how EBMC's
//! word-level engine behaves — cheaper formulas on data-path designs,
//! but no incremental solver reuse between bounds.

use crate::result::{Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
use aig::Blaster;
use rtlir::unroll::{InitMode, Unroller};
use rtlir::TransitionSystem;
use satb::{Part, SolveResult, Solver};
use std::time::Instant;

/// Word-level k-induction engine.
#[derive(Clone, Debug)]
pub struct WordKInduction {
    /// Resource limits.
    pub budget: Budget,
    /// Add pairwise state-distinctness (simple path) constraints.
    pub simple_path: bool,
}

impl Default for WordKInduction {
    fn default() -> WordKInduction {
        WordKInduction {
            budget: Budget::default(),
            simple_path: true,
        }
    }
}

impl WordKInduction {
    /// Creates an engine with the given budget.
    pub fn new(budget: Budget) -> WordKInduction {
        WordKInduction {
            budget,
            ..WordKInduction::default()
        }
    }

    /// Solves a single-bit word-level formula built in `unroller`'s
    /// pool. Returns the solver (for model extraction) and the result;
    /// the per-query solver's counters are folded into `stats` (each
    /// bound solves from scratch, so the solver dies with the query).
    fn solve_formula<'u>(
        &self,
        unroller: &'u Unroller<'_>,
        roots: &[rtlir::ExprId],
        started: Instant,
        stats: &mut EngineStats,
    ) -> (SolveResult, Option<WordModel<'u>>) {
        let mut blaster = Blaster::new(unroller.pool());
        let bits: Vec<aig::AigLit> = roots.iter().map(|&r| blaster.blast_bit(r)).collect();
        let aig = blaster.aig();
        let mut solver = Solver::new();
        let mut enc = aig::FrameEncoder::new();
        for &b in &bits {
            let l = enc.encode(aig, &mut solver, b, Part::A);
            solver.add_clause(&[l]);
        }
        let r = solver.solve_limited(&[], self.budget.sat_limits(started));
        stats.absorb_solver(&solver.stats());
        if r == SolveResult::Sat {
            // Capture CI values so the caller can evaluate word-level
            // expressions of the model.
            let mut ci_vals = vec![false; aig.num_cis()];
            for (ci, al) in aig.ci_lits().into_iter().enumerate() {
                ci_vals[ci] = enc
                    .mapped(al)
                    .and_then(|sl| solver.value(sl))
                    .unwrap_or(false);
            }
            let model = WordModel { blaster, ci_vals };
            return (r, Some(model));
        }
        (r, None)
    }
}

/// A satisfying assignment at the word level: CI values plus the
/// blaster that maps word expressions to bits.
struct WordModel<'p> {
    blaster: Blaster<'p>,
    ci_vals: Vec<bool>,
}

impl WordModel<'_> {
    /// Evaluates a word-level expression under the model. Expressions
    /// outside the solved cone may introduce fresh CIs (don't-cares),
    /// which read as zero.
    fn eval_word(&mut self, e: rtlir::ExprId) -> u64 {
        let bits = self.blaster.blast(e).bits().to_vec();
        if self.ci_vals.len() < self.blaster.aig().num_cis() {
            self.ci_vals.resize(self.blaster.aig().num_cis(), false);
        }
        let mut out = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if self.blaster.aig().eval(b, &self.ci_vals) {
                out |= 1 << i;
            }
        }
        out
    }
}

impl Checker for WordKInduction {
    fn name(&self) -> &'static str {
        "ebmc-kind"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();

        for k in 0..=self.budget.max_depth {
            if let Some(u) = self.budget.interruption(started) {
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            stats.depth = k;

            // Base case: fresh initialized unrolling, bad at frame k,
            // constraints on all frames, no bad before k.
            let mut base = Unroller::new(ts, InitMode::Initialized);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = base.constraint(f);
                roots.push(c);
                if f < k as usize {
                    let b = base.bad(f);
                    let nb = base.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = base.bad(k as usize);
            roots.push(bk);
            // Pre-materialize everything a trace needs, because model
            // extraction borrows the unroller's pool immutably.
            // Per frame, per state: the word expressions to evaluate
            // (one for a bit-vector, one read per index for an array).
            let mut state_words: Vec<Vec<Vec<rtlir::ExprId>>> = Vec::new();
            let mut input_words: Vec<Vec<rtlir::ExprId>> = Vec::new();
            for f in 0..=k as usize {
                let mut per_state = Vec::new();
                for (si, s) in ts.states().iter().enumerate() {
                    let sort = ts.pool().var_sort(s.var);
                    let e = base.state(f, si);
                    let words = match sort {
                        rtlir::Sort::Bv(_) => vec![e],
                        rtlir::Sort::Array { index_width, .. } => (0..(1u64 << index_width))
                            .map(|idx| {
                                let ie = base.pool_mut().constv(index_width, idx);
                                base.pool_mut().read(e, ie)
                            })
                            .collect(),
                    };
                    per_state.push(words);
                }
                state_words.push(per_state);
                let inps = (0..ts.inputs().len()).map(|ii| base.input(f, ii)).collect();
                input_words.push(inps);
            }
            let bad_words: Vec<rtlir::ExprId> = (0..ts.bads().len())
                .map(|bi| base.bad_at(k as usize, bi))
                .collect();
            stats.sat_queries += 1;
            let (r, model) = self.solve_formula(&base, &roots, started, &mut stats);
            match r {
                SolveResult::Sat => {
                    let mut model = model.expect("sat model");
                    // Flatten the word-level model to the bit order of
                    // AigSystem (state-major, LSB first).
                    let mut states = Vec::new();
                    let mut inputs = Vec::new();
                    for f in 0..=k as usize {
                        let mut st = Vec::new();
                        for (si, s) in ts.states().iter().enumerate() {
                            let sort = ts.pool().var_sort(s.var);
                            let width = match sort {
                                rtlir::Sort::Bv(w) => w,
                                rtlir::Sort::Array { elem_width, .. } => elem_width,
                            };
                            for &e in &state_words[f][si] {
                                let v = model.eval_word(e);
                                for b in 0..width {
                                    st.push((v >> b) & 1 == 1);
                                }
                            }
                        }
                        states.push(st);
                        let mut inp = Vec::new();
                        for (ii, &ivar) in ts.inputs().iter().enumerate() {
                            let w = ts.pool().var_sort(ivar).width();
                            let v = model.eval_word(input_words[f][ii]);
                            for b in 0..w {
                                inp.push((v >> b) & 1 == 1);
                            }
                        }
                        inputs.push(inp);
                    }
                    let bad_index = bad_words
                        .iter()
                        .position(|&e| model.eval_word(e) == 1)
                        .unwrap_or(0);
                    let trace = Trace {
                        states,
                        inputs,
                        bad_index,
                    };
                    return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
                SolveResult::Unsat => {}
            }

            // A base-case solve that exhausted the budget must not run
            // the step solve before the next iteration notices.
            if let Some(u) = self.budget.interruption(started) {
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }

            // Inductive step: free initial state, property holds for
            // frames 0..k-1, fails at k, simple path.
            let mut step = Unroller::new(ts, InitMode::Free);
            let mut roots = Vec::new();
            for f in 0..=k as usize {
                let c = step.constraint(f);
                roots.push(c);
                if f < k as usize {
                    let b = step.bad(f);
                    let nb = step.pool_mut().not(b);
                    roots.push(nb);
                }
            }
            let bk = step.bad(k as usize);
            roots.push(bk);
            if self.simple_path {
                for i in 0..k as usize {
                    for j in (i + 1)..=k as usize {
                        let d = step.frames_distinct(i, j);
                        roots.push(d);
                    }
                }
            }
            stats.sat_queries += 1;
            let (r, _) = self.solve_formula(&step, &roots, started, &mut stats);
            match r {
                SolveResult::Unsat => {
                    return CheckOutcome::finish(Verdict::Safe, stats, started);
                }
                SolveResult::Unknown(why) => {
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
                SolveResult::Sat => {}
            }
        }
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    #[test]
    fn finds_counter_bug_at_word_level() {
        for depth in [0u64, 3, 12] {
            let ts = crate::bmc::tests::counter_ts(depth, 8);
            let out = WordKInduction::default().check(&ts);
            match out.outcome {
                Verdict::Unsafe(trace) => {
                    assert_eq!(trace.length() as u64, depth);
                    let sys = aig::blast_system(&ts);
                    assert!(
                        trace.replays_on(&sys),
                        "word-level trace replays on bit-level model"
                    );
                }
                other => panic!("expected Unsafe at {depth}, got {other:?}"),
            }
        }
    }

    #[test]
    fn proves_saturating_counter() {
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at, sv, inc);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        let out = WordKInduction::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
        assert!(out.stats.depth <= 2);
    }

    #[test]
    fn agrees_with_bit_level_kind() {
        use crate::kind::KInduction;
        // Input-gated saturating counter.
        let mut ts = TransitionSystem::new("gated");
        let en = ts.add_input("en", Sort::BOOL);
        let s = ts.add_state("c", Sort::Bv(6));
        let (env_, sv) = {
            let p = ts.pool_mut();
            (p.var(en), p.var(s))
        };
        let lim = ts.pool_mut().constv(6, 30);
        let one = ts.pool_mut().constv(6, 1);
        let zero = ts.pool_mut().constv(6, 0);
        let lt = ts.pool_mut().ult(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let can = ts.pool_mut().and(env_, lt);
        let next = ts.pool_mut().ite(can, inc, sv);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "c > 30");

        let word = WordKInduction::default().check(&ts);
        let bit = KInduction::default().check(&ts);
        assert_eq!(word.outcome, Verdict::Safe);
        assert_eq!(bit.outcome, Verdict::Safe);
        // Section III-C of the paper: same k on both representations.
        assert_eq!(word.stats.depth, bit.stats.depth, "same inductive k");
    }
}
