//! # Parallel PDR and lemma exchange
//!
//! Multi-core scaling beyond "race and cancel": N PDR workers
//! cooperate over one [`SharedFrames`] store (rIC3-style), and a
//! cross-seat [`LemmaBus`] feeds PDR's inductive clauses into the
//! k-induction and interpolation seats of the portfolio.
//!
//! ## Worker diversification
//!
//! Every worker runs the full single-solver PDR engine
//! ([`crate::pdr`]) on its own solver, but with a diversified
//! generalization profile (`pdr::Diversity`): worker 0 is the tuned
//! default (ternary widening + SAT-core lifting + activity-ordered
//! shrink), and each sibling disables one dimension while a per-worker
//! seed jitters the shrink order. Diverse generalizations of the same
//! obligation produce *different* blocking clauses — which is exactly
//! what makes sharing them profitable.
//!
//! ## The shared frame store and its sync points
//!
//! [`SharedFrames`] is lock-sharded by frame level (`level % SHARDS`);
//! each shard is an append-only log of `(level, cube, worker)` entries
//! with subsumption-on-insert (a new cube is rejected when an alive
//! entry at `>= level` subsumes it, and kills alive entries at
//! `<= level` that it subsumes). Workers keep a per-shard read cursor
//! — the generation counter — and sync at two points: the top of the
//! main solve loop (once per frontier level) and before each
//! obligation burst. A synced cube enters the worker through the same
//! `add_blocked` path as a locally derived one, via
//! [`satb::Solver::add_clause_activated_prenormalized`] on the frame's
//! activation group.
//!
//! ## Soundness of foreign-cube import
//!
//! A published cube at level `L` genuinely blocks only states
//! unreachable within `L` steps (induction over publication order),
//! so *verdicts* cannot be corrupted by imports. The Safe-verdict
//! *certificate*, however, rests on a stronger per-cube invariant:
//! every stored cube must be inductive relative to the importing
//! worker's **own** `F_{level-1}` — and a peer proved its cube only
//! relative to *its* frames, which this worker may not (yet) have, at
//! levels the import may clamp. Imports are therefore **re-verified**:
//! the worker runs its ordinary relative-induction query on the
//! foreign cube and stores it only on UNSAT (often shrunk further by
//! the failed-assumption core). Non-inductive imports are skipped, not
//! trusted. Every cube in every worker's frames — local or foreign —
//! thus carries a local proof, the fixpoint export stays a genuine
//! inductive invariant, and the portfolio's independent certification
//! re-checks it against the raw template exactly as for solo PDR.
//!
//! ## Cross-seat lemma broadcast
//!
//! PDR frame clauses are *not* globally inductive — `F_i` clauses hold
//! up to `i` steps only — so consumers cannot assert them blindly.
//! The [`LemmaBus`] (bounded per-consumer queues, drop-oldest
//! backpressure) carries candidate clauses from PDR's frontier to the
//! k-induction and interpolation seats, where a `LemmaGate` runs
//! Houdini-style incremental admission: a clause is accepted only if
//! (a) it contains a literal implied by the reset state (syntactic
//! initiation — PDR's init-disjoint cubes always provide one), and
//! (b) consecution relative to the already-accepted set holds:
//! `inv ∧ accepted ∧ C ∧ T ∧ ¬C′` is UNSAT on one template frame.
//! Admission is monotone — each clause was verified against a subset
//! of the final accepted set and premises only strengthen — so the
//! final conjunction is inductive relative to the certified static
//! invariant. Consumers assert accepted clauses on every frame
//! (k-induction base *and* step chains, interpolation's A-frame and
//! B-frames) and fold them into their certificates, which the
//! portfolio re-certifies against the raw template with an independent
//! solver: a gate bug can cost a verdict, never truth.

use crate::certify::{clause_on, LatchClause};
use crate::pdr::{subsumes, Cube, Diversity, PdrRun};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Unknown, Verdict};
use aig::{AigSystem, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::{Domain, Limits, Lit, Part, SolveResult, Solver, Var};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Number of lock shards in [`SharedFrames`] (cubes map by
/// `level % SHARDS`).
pub(crate) const SHARDS: usize = 8;

/// Per-consumer queue bound of the [`LemmaBus`]; the oldest lemma is
/// dropped when a slow consumer falls this far behind (backpressure
/// must never block a publishing prover).
const BUS_CAPACITY: usize = 256;

/// Locks a mutex, surviving poisoning: a worker that panicked while
/// holding a shard lock (the portfolio isolates crashes with
/// `catch_unwind`) must not wedge its siblings — the store's data is a
/// monotone log plus `alive` flags, valid at every intermediate state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One published blocking cube.
#[derive(Debug)]
struct SharedCube {
    level: usize,
    cube: Cube,
    /// Publishing worker (imports skip their own entries).
    from: usize,
    /// Cleared when a later, stronger cube subsumes this entry.
    alive: bool,
}

#[derive(Debug, Default)]
struct Shard {
    entries: Vec<SharedCube>,
}

/// The shared frame store of a parallel PDR pool: lock-sharded
/// append-only logs of published blocking cubes, subsumption-checked
/// on insert, consumed via per-worker read cursors. See the
/// [module docs](self) for the soundness argument.
#[derive(Debug, Default)]
pub struct SharedFrames {
    shards: [Mutex<Shard>; SHARDS],
}

impl SharedFrames {
    /// An empty store.
    pub fn new() -> SharedFrames {
        SharedFrames::default()
    }

    /// Publishes a blocked cube; returns `false` when an alive entry
    /// at `>= level` already subsumes it (nothing new to share). The
    /// subsumption sweep visits every shard, one lock at a time — the
    /// check is a dedup optimization, so the lack of atomicity across
    /// shards costs at worst a duplicate entry, never soundness.
    pub(crate) fn publish(&self, level: usize, cube: Cube, from: usize) -> bool {
        for shard in &self.shards {
            let mut shard = lock(shard);
            if shard
                .entries
                .iter()
                .any(|e| e.alive && e.level >= level && subsumes(&e.cube, &cube))
            {
                return false;
            }
            for e in &mut shard.entries {
                if e.alive && e.level <= level && subsumes(&cube, &e.cube) {
                    e.alive = false;
                }
            }
        }
        lock(&self.shards[level % SHARDS]).entries.push(SharedCube {
            level,
            cube,
            from,
            alive: true,
        });
        true
    }

    /// Appends every alive foreign entry published since the worker's
    /// cursors to `out`, and advances the cursors (the generation
    /// counters) to the shard tails.
    pub(crate) fn collect_foreign(
        &self,
        worker: usize,
        cursors: &mut [usize; SHARDS],
        out: &mut Vec<(usize, Cube)>,
    ) {
        for (s, shard) in self.shards.iter().enumerate() {
            let shard = lock(shard);
            for e in &shard.entries[cursors[s]..] {
                if e.from != worker && e.alive {
                    out.push((e.level, e.cube.clone()));
                }
            }
            cursors[s] = shard.entries.len();
        }
    }

    /// All alive entries as `(level, cube)` pairs (tests, diagnostics).
    #[cfg(test)]
    pub(crate) fn snapshot(&self) -> Vec<(usize, Cube)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            out.extend(
                shard
                    .entries
                    .iter()
                    .filter(|e| e.alive)
                    .map(|e| (e.level, e.cube.clone())),
            );
        }
        out
    }

    /// Number of alive entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(s).entries.iter().filter(|e| e.alive).count())
            .sum()
    }

    /// Whether no alive entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Default)]
struct BusInner {
    queues: Mutex<Vec<Arc<Mutex<VecDeque<LatchClause>>>>>,
    dropped: AtomicU64,
}

/// Cross-seat lemma broadcast: bounded per-consumer queues with
/// drop-oldest backpressure. Clone handles freely; subscribe once per
/// consumer, then hand [`LemmaPublisher`]s to producers.
#[derive(Clone, Debug, Default)]
pub struct LemmaBus {
    inner: Arc<BusInner>,
}

impl LemmaBus {
    /// A bus with no subscribers yet.
    pub fn new() -> LemmaBus {
        LemmaBus::default()
    }

    /// Registers a consumer and returns its receiving end.
    pub fn subscribe(&self) -> LemmaReceiver {
        let q = Arc::new(Mutex::new(VecDeque::new()));
        lock(&self.inner.queues).push(Arc::clone(&q));
        LemmaReceiver { queue: q }
    }

    /// A publishing handle (producers fan out to every subscriber).
    pub fn publisher(&self) -> LemmaPublisher {
        LemmaPublisher {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Discards every queued lemma (a portfolio run clears leftovers
    /// from a previous check before racing; the consumer-side gate
    /// re-validates every clause against the current design anyway, so
    /// this is hygiene, not soundness).
    pub fn clear(&self) {
        for q in lock(&self.inner.queues).iter() {
            lock(q).clear();
        }
    }

    /// Lemmas dropped to backpressure since construction.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// The producing end of a [`LemmaBus`].
#[derive(Clone, Debug)]
pub struct LemmaPublisher {
    inner: Arc<BusInner>,
}

impl LemmaPublisher {
    /// Broadcasts one clause to every subscriber, dropping each
    /// subscriber's oldest entry when its queue is full.
    pub fn publish(&self, clause: &LatchClause) {
        for q in lock(&self.inner.queues).iter() {
            let mut q = lock(q);
            if q.len() >= BUS_CAPACITY {
                q.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            q.push_back(clause.clone());
        }
    }
}

/// The consuming end of a [`LemmaBus`].
#[derive(Clone, Debug)]
pub struct LemmaReceiver {
    queue: Arc<Mutex<VecDeque<LatchClause>>>,
}

impl LemmaReceiver {
    /// Takes every queued lemma.
    pub fn drain(&self) -> Vec<LatchClause> {
        lock(&self.queue).drain(..).collect()
    }
}

/// Consumer-side admission gate for broadcast lemmas (see the
/// [module docs](self)): Houdini-style incremental checking on one
/// template frame. Accepted clauses are inductive relative to the
/// static invariant plus the previously accepted set, so consumers may
/// assert the whole accepted prefix on any frame of any chain.
pub(crate) struct LemmaGate {
    solver: Solver,
    latch_cur: Vec<Lit>,
    latch_next: Vec<Lit>,
    inits: Vec<Option<bool>>,
    accepted: Vec<LatchClause>,
    /// Every clause ever offered (accepted or not): duplicates are
    /// answered `false` without a query — the consumer already asserted
    /// an accepted clause the first time.
    seen: HashSet<LatchClause>,
    /// Query scoping (see [`satb::domain`]): the base vocabulary every
    /// consecution check needs (latches, inputs, constraint cone) …
    base_dom: Vec<Var>,
    /// … plus, per candidate, the next-state cones of its latches.
    next_cones: Vec<Vec<Var>>,
    /// Reusable per-check decision domain.
    dom: Domain,
}

impl LemmaGate {
    /// One template frame with the certified static invariant asserted
    /// on its current-state side (the `Blasted` contract).
    pub(crate) fn new(sys: &AigSystem, tpl: &TransitionTemplate, inv: &[LatchClause]) -> LemmaGate {
        let mut solver = Solver::new();
        let vars = tpl.instantiate(&mut solver, Part::A, 0);
        for clause in inv {
            solver.add_clause(&clause_on(clause, &vars.latch_cur));
        }
        let mut dom = Domain::new();
        vars.extend_domain_base(tpl, &mut dom);
        let base_dom = dom.vars().to_vec();
        let next_cones: Vec<Vec<Var>> = (0..sys.latches.len())
            .map(|i| {
                dom.clear();
                vars.extend_domain(&mut dom, tpl.latch_next_cone(i));
                dom.vars().to_vec()
            })
            .collect();
        dom.clear();
        LemmaGate {
            solver,
            latch_cur: vars.latch_cur,
            latch_next: vars.latch_next,
            inits: sys.latches.iter().map(|l| l.init).collect(),
            accepted: Vec::new(),
            seen: HashSet::new(),
            base_dom,
            next_cones,
            dom,
        }
    }

    /// Checks one candidate clause; on acceptance it is asserted into
    /// the gate's premise (strengthening later checks) and `true` is
    /// returned — the caller must then assert it on its own frames.
    pub(crate) fn admit(&mut self, clause: &LatchClause, limits: Limits) -> bool {
        if clause.is_empty()
            || clause.iter().any(|&(i, _)| i >= self.latch_cur.len())
            || !self.seen.insert(clause.clone())
        {
            return false;
        }
        // Initiation, syntactically: some literal is implied by reset.
        if !clause.iter().any(|&(i, v)| self.inits[i] == Some(v)) {
            return false;
        }
        // Consecution relative to the accepted set:
        // inv ∧ accepted ∧ C ∧ T ∧ ¬C′ must be UNSAT.
        let cl = clause_on(clause, &self.latch_cur);
        let act = self.solver.new_activation();
        self.solver.add_clause_activated(act, &cl);
        let mut assumptions = vec![act];
        for &(i, v) in clause {
            assumptions.push(if v {
                !self.latch_next[i]
            } else {
                self.latch_next[i]
            });
        }
        // Cone-restricted consecution: decisions stay inside the
        // candidate's cone of influence. The admission only acts on
        // UNSAT (unconditionally sound); the Sat side rejects, which
        // costs at most a lemma, never truth.
        self.dom.clear();
        self.dom.extend(self.base_dom.iter().copied());
        self.dom.extend(assumptions.iter().map(|l| l.var()));
        for &(i, _) in clause {
            self.dom.extend(self.next_cones[i].iter().copied());
        }
        let res = self
            .solver
            .solve_with_domain(&assumptions, limits, &self.dom);
        self.solver.release_activation(act);
        if res == SolveResult::Unsat {
            self.solver.add_clause(&cl);
            self.accepted.push(clause.clone());
            true
        } else {
            false
        }
    }

    /// Every clause accepted so far (consumers fold these into their
    /// certificates).
    pub(crate) fn accepted(&self) -> &[LatchClause] {
        &self.accepted
    }
}

/// Parallel PDR: races N diversified workers over one [`SharedFrames`]
/// store; the first definite verdict wins and cancels the rest, and
/// the pooled statistics (lemmas exported/imported, sync rounds) are
/// summed across workers.
#[derive(Clone, Debug)]
pub struct ParallelPdr {
    /// Resource limits, shared by every worker.
    pub budget: Budget,
    /// Worker count (clamped to at least 1).
    pub workers: usize,
    /// Optional cross-seat broadcast; worker 0 (the tuned default
    /// profile) publishes its frontier clauses.
    pub bus: Option<LemmaPublisher>,
}

impl ParallelPdr {
    /// A pool of `workers` diversified PDR workers.
    pub fn new(budget: Budget, workers: usize) -> ParallelPdr {
        ParallelPdr {
            budget,
            workers: workers.max(1),
            bus: None,
        }
    }

    /// Attaches a cross-seat lemma publisher (worker 0 broadcasts).
    #[must_use]
    pub fn with_bus(mut self, bus: LemmaPublisher) -> ParallelPdr {
        self.bus = Some(bus);
        self
    }

    /// Runs the pool; returns the winning outcome and the shared store
    /// (exposed for tests and diagnostics).
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> (CheckOutcome, Arc<SharedFrames>) {
        let started = Instant::now();
        let workers = self.workers.max(1);
        let store = Arc::new(SharedFrames::new());
        // The pool-internal stop flag: raised by the first definite
        // verdict, or forwarded from the caller's budget.
        let race = Arc::new(AtomicBool::new(false));
        let external = self.budget.stop.clone();
        let (tx, rx) = mpsc::channel::<(usize, CheckOutcome)>();
        let outcome = std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let store = Arc::clone(&store);
                let bus = if w == 0 { self.bus.clone() } else { None };
                let budget = Budget {
                    stop: Some(Arc::clone(&race)),
                    ..self.budget.clone()
                };
                scope.spawn(move || {
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut run = PdrRun::new(sys, tpl, inv, budget);
                        run.set_diversity(Diversity::for_worker(w));
                        run.attach_shared(store, w);
                        if let Some(bus) = bus {
                            run.attach_bus(bus);
                        }
                        run.solve()
                    }))
                    .unwrap_or_else(|_| {
                        CheckOutcome::finish(
                            Verdict::Unknown(Unknown::Crashed(format!("par-pdr worker {w}"))),
                            EngineStats::default(),
                            Instant::now(),
                        )
                    });
                    let _ = tx.send((w, out));
                });
            }
            drop(tx);
            let mut stats = EngineStats::default();
            let mut winner: Option<CheckOutcome> = None;
            let mut fallback: Option<CheckOutcome> = None;
            let mut done = 0;
            while done < workers {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok((_w, out)) => {
                        done += 1;
                        fold_stats(&mut stats, &out.stats);
                        let definite = matches!(out.outcome, Verdict::Safe | Verdict::Unsafe(_));
                        if definite && winner.is_none() {
                            race.store(true, Ordering::Relaxed);
                            winner = Some(out);
                        } else if !definite {
                            // Prefer an informative Unknown (bound /
                            // timeout) over a co-operative Cancelled.
                            let informative =
                                !matches!(out.outcome, Verdict::Unknown(Unknown::Cancelled));
                            if fallback.is_none()
                                || (informative
                                    && matches!(
                                        fallback.as_ref().map(|f| &f.outcome),
                                        Some(Verdict::Unknown(Unknown::Cancelled))
                                    ))
                            {
                                fallback = Some(out);
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Forward the caller's cancellation into the pool.
                        if external.as_ref().is_some_and(|e| e.load(Ordering::Relaxed)) {
                            race.store(true, Ordering::Relaxed);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            let chosen = winner.or(fallback).unwrap_or_else(|| {
                CheckOutcome::finish(
                    Verdict::Unknown(Unknown::Crashed("par-pdr pool".into())),
                    EngineStats::default(),
                    started,
                )
            });
            let certificate = chosen.certificate.clone();
            stats.depth = stats.depth.max(chosen.stats.depth);
            let mut out = CheckOutcome::finish(chosen.outcome, stats, started);
            out.certificate = certificate;
            out
        });
        (outcome, store)
    }
}

/// Sums worker statistics into the pool totals (depth is maximized,
/// everything else accumulates; arena peaks sum because the workers'
/// solvers coexist).
fn fold_stats(total: &mut EngineStats, s: &EngineStats) {
    total.depth = total.depth.max(s.depth);
    total.sat_queries += s.sat_queries;
    total.conflicts += s.conflicts;
    total.decisions += s.decisions;
    total.propagations += s.propagations;
    total.domain_decisions += s.domain_decisions;
    total.domain_skipped += s.domain_skipped;
    total.chrono_backtracks += s.chrono_backtracks;
    total.inproc_subsumed += s.inproc_subsumed;
    total.reduces += s.reduces;
    total.deleted += s.deleted;
    total.arena_bytes += s.arena_bytes;
    total.arena_peak_bytes += s.arena_peak_bytes;
    total.act_recycled += s.act_recycled;
    total.ternary_drops += s.ternary_drops;
    total.lifted_lits += s.lifted_lits;
    total.lemmas_exported += s.lemmas_exported;
    total.lemmas_imported += s.lemmas_imported;
    total.sync_rounds += s.sync_rounds;
}

impl Checker for ParallelPdr {
    fn name(&self) -> &'static str {
        "par-pdr"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[]).0
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self
            .run(&blasted.sys, &blasted.template, &blasted.invariant.clauses)
            .0;
        blasted.stamp(&mut out.stats);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify;
    use satb::Chaos;

    fn random_system(seed: u64) -> AigSystem {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        aig::testutil::random_system(&mut rng, &aig::testutil::RandomSystemConfig::default())
    }

    fn bounded(max_depth: u32) -> Budget {
        Budget {
            timeout: None,
            max_depth,
            ..Budget::default()
        }
    }

    /// Bus mechanics: fan-out to every subscriber, drop-oldest
    /// backpressure, and clear.
    #[test]
    fn bus_fans_out_and_drops_oldest() {
        let bus = LemmaBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        let tx = bus.publisher();
        for i in 0..(BUS_CAPACITY + 10) {
            tx.publish(&vec![(i, true)]);
        }
        let got = a.drain();
        assert_eq!(got.len(), BUS_CAPACITY, "bounded queue");
        assert_eq!(got[0], vec![(10, true)], "oldest entries dropped");
        assert_eq!(bus.dropped(), 20, "10 drops on each of 2 subscribers");
        bus.clear();
        assert!(b.drain().is_empty(), "clear discards unread lemmas");
    }

    /// Store mechanics: subsumption on insert (both directions) and
    /// cursor-based foreign collection.
    #[test]
    fn shared_store_subsumes_and_syncs() {
        let store = SharedFrames::new();
        assert!(store.publish(2, vec![(0, true), (1, false)], 0));
        // Weaker cube at a lower level: subsumed, rejected.
        assert!(!store.publish(1, vec![(0, true), (1, false), (2, true)], 1));
        // Stronger cube at a higher level: accepted, kills the first.
        assert!(store.publish(3, vec![(0, true)], 1));
        assert_eq!(store.len(), 1);
        let mut cursors = [0usize; SHARDS];
        let mut out = Vec::new();
        store.collect_foreign(1, &mut cursors, &mut out);
        assert!(out.is_empty(), "own entries are skipped (worker 1)");
        let mut cursors0 = [0usize; SHARDS];
        store.collect_foreign(0, &mut cursors0, &mut out);
        assert_eq!(out, vec![(3, vec![(0, true)])]);
        out.clear();
        store.collect_foreign(0, &mut cursors0, &mut out);
        assert!(out.is_empty(), "cursors advance past consumed entries");
    }

    /// The admission gate accepts a genuinely inductive clause,
    /// rejects a non-inductive one and a reset-violating one, and
    /// answers duplicates without re-checking.
    #[test]
    fn lemma_gate_admits_only_inductive_clauses() {
        // Two latches from reset 0: `a` holds its value (a = 0 is
        // inductive), `b` toggles every cycle (b = 0 is not).
        let mut ts = TransitionSystem::new("gate");
        let a = ts.add_state("a", rtlir::Sort::BOOL);
        let b = ts.add_state("b", rtlir::Sort::BOOL);
        let (av, bv) = {
            let p = ts.pool_mut();
            (p.var(a), p.var(b))
        };
        let nb = ts.pool_mut().not(bv);
        let zero = ts.pool_mut().constv(1, 0);
        ts.set_init(a, zero);
        ts.set_init(b, zero);
        ts.set_next(a, av);
        ts.set_next(b, nb);
        ts.add_bad(av, "a set");
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let mut gate = LemmaGate::new(&sys, &tpl, &[]);
        let a_zero: LatchClause = vec![(0, false)];
        let b_zero: LatchClause = vec![(1, false)];
        let a_one: LatchClause = vec![(0, true)];
        assert!(gate.admit(&a_zero, Limits::default()), "a=0 is inductive");
        assert!(
            !gate.admit(&b_zero, Limits::default()),
            "b toggles: consecution fails"
        );
        assert!(
            !gate.admit(&a_one, Limits::default()),
            "a=1 violates the reset state"
        );
        assert!(
            !gate.admit(&a_zero, Limits::default()),
            "duplicates are answered without re-asserting"
        );
        assert_eq!(gate.accepted(), &[a_zero]);
        // Out-of-range latch indices (stale lemmas from another
        // design) are rejected, never indexed.
        assert!(!gate.admit(&vec![(99, true)], Limits::default()));
    }

    /// Verdict agreement: parallel PDR with 1, 2 and 4 workers agrees
    /// with solo PDR on random sequential AIGs; Unsafe traces replay
    /// and Safe certificates check.
    #[test]
    fn agrees_with_solo_pdr_on_random_systems() {
        for seed in 0u64..12 {
            let sys = random_system(seed);
            let tpl = TransitionTemplate::compile(&sys);
            let solo = crate::pdr::Pdr::new(bounded(64)).run(&sys, &tpl, &[]);
            for workers in [1usize, 2, 4] {
                let (out, _store) = ParallelPdr::new(bounded(64), workers).run(&sys, &tpl, &[]);
                match (&solo.outcome, &out.outcome) {
                    (Verdict::Safe, Verdict::Safe) => {
                        let rep = certify(&sys, &out);
                        assert!(
                            rep.ok,
                            "seed {seed} workers={workers}: certificate failed: {:?}",
                            rep.failure
                        );
                    }
                    (Verdict::Unsafe(_), Verdict::Unsafe(t)) => {
                        assert!(
                            t.replays_on(&sys),
                            "seed {seed} workers={workers}: trace must replay"
                        );
                    }
                    (Verdict::Unknown(_), Verdict::Unknown(_)) => {}
                    other => {
                        panic!("seed {seed} workers={workers}: verdicts diverge: {other:?}")
                    }
                }
            }
        }
    }

    /// Chaos mid-broadcast: cancelling workers in the middle of store
    /// traffic leaves both the workers and the shared store clean —
    /// the pool returns a clean verdict (certified when definite),
    /// every surviving store cube is well-formed and init-disjoint,
    /// and a calm re-run converges and certifies.
    #[test]
    fn cancellation_mid_broadcast_leaves_pool_clean() {
        for seed in 0u64..8 {
            let sys = random_system(seed);
            let tpl = TransitionTemplate::compile(&sys);
            for chaos_seed in 0u64..3 {
                let chaotic = bounded(24).with_chaos(Chaos {
                    seed: chaos_seed,
                    period: 3,
                });
                let (out, store) = ParallelPdr::new(chaotic, 3).run(&sys, &tpl, &[]);
                match &out.outcome {
                    Verdict::Safe | Verdict::Unsafe(_) => {
                        let rep = certify(&sys, &out);
                        assert!(
                            rep.ok,
                            "seed {seed}/{chaos_seed}: chaotic verdict failed: {:?}",
                            rep.failure
                        );
                    }
                    Verdict::Unknown(_) => {}
                }
                // The store must hold only well-formed, init-disjoint
                // cubes — a cancelled publish never leaves half an entry.
                for (level, cube) in store.snapshot() {
                    assert!(level >= 1, "stored at level 0: {cube:?}");
                    assert!(
                        cube.windows(2).all(|w| w[0].0 < w[1].0),
                        "cube not sorted/distinct: {cube:?}"
                    );
                    assert!(
                        cube.iter()
                            .any(|&(i, v)| { sys.latches[i].init.is_some_and(|init| init != v) }),
                        "stored cube intersects init: {cube:?}"
                    );
                }
            }
            // Clean retry on a fresh pool: the residue of cancelled
            // runs must not poison a later answer.
            let (calm, _s) = ParallelPdr::new(bounded(64), 2).run(&sys, &tpl, &[]);
            if matches!(calm.outcome, Verdict::Safe | Verdict::Unsafe(_)) {
                let rep = certify(&sys, &calm);
                assert!(
                    rep.ok,
                    "seed {seed}: post-chaos verdict failed: {:?}",
                    rep.failure
                );
            }
        }
    }

    /// The pool solves the standard designs and pools its stats:
    /// with 2+ workers on a design with real work, cubes flow through
    /// the store (exports > 0) and sync rounds happen.
    #[test]
    fn pool_shares_lemmas_on_real_designs() {
        let ts = crate::bmc::tests::counter_ts(9, 8);
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let (out, store) = ParallelPdr::new(bounded(64), 2).run(&sys, &tpl, &[]);
        match &out.outcome {
            Verdict::Unsafe(t) => assert!(t.replays_on(&sys), "trace must replay"),
            other => panic!("counter_ts(9,8) must be Unsafe, got {other:?}"),
        }
        assert!(
            out.stats.lemmas_exported > 0,
            "workers must publish cubes: {:?}",
            out.stats
        );
        assert!(!store.is_empty(), "the store must retain cubes");
    }
}
