//! The historical one-solver-per-frame PDR, kept as a measurement
//! baseline.
//!
//! This is the pre-single-solver architecture of [`crate::pdr`]: every
//! frame owns a private [`satb::Solver`] loaded with its own copy of
//! the shared [`TransitionTemplate`], blocking clauses are re-added to
//! every solver at or below their level, and each relative-induction
//! query leaks a fresh activation variable plus a kill-switch unit
//! clause into the queried frame solver. Deep runs therefore pay
//! O(frames × template) arena memory — exactly what the
//! activation-literal engine in [`crate::pdr`] eliminates.
//!
//! The `pdrperf` bench bin races the two architectures over
//! `benchmarks/*.v`, and property tests cross-check their verdicts on
//! random sequential AIGs; nothing else should use this engine.

use crate::certify::{clause_on, LatchClause};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
use aig::{AigSystem, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::{Lit, Part, SolveResult, Solver};
use std::collections::BinaryHeap;
use std::time::Instant;

/// A cube: a partial assignment to latches, as (latch index, value)
/// pairs sorted by index.
type Cube = Vec<(usize, bool)>;

/// A SAT predecessor: (latch state, input vector) driving into a cube.
type Predecessor = (Vec<bool>, Vec<bool>);

/// One frame's SAT solver: a single copy of the transition relation,
/// loaded from the run's shared [`TransitionTemplate`] (no per-frame
/// re-Tseitin: creating a frame solver is an offset-mapped bulk load).
struct FrameSolver {
    solver: Solver,
    latch_lits: Vec<Lit>,
    next_lits: Vec<Lit>,
    input_lits: Vec<Lit>,
    bad_lits: Vec<Lit>,
    bad_lit: Lit,
}

impl FrameSolver {
    fn new(
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
        initialized: bool,
    ) -> FrameSolver {
        let mut solver = Solver::new();
        let vars = tpl.instantiate(&mut solver, Part::A, 0);
        // Certified static invariant: valid in every frame (initialized
        // or free), and required for soundness when the template was
        // refined under it.
        for clause in inv {
            solver.add_clause(&clause_on(clause, &vars.latch_cur));
        }
        if initialized {
            vars.assert_init(sys, &mut solver);
        }
        FrameSolver {
            solver,
            latch_lits: vars.latch_cur,
            next_lits: vars.latch_next,
            input_lits: vars.inputs,
            bad_lits: vars.bads,
            bad_lit: vars.any_bad,
        }
    }

    fn blocking_clause(&self, cube: &Cube) -> Vec<Lit> {
        cube.iter()
            .map(|&(i, v)| {
                if v {
                    !self.latch_lits[i]
                } else {
                    self.latch_lits[i]
                }
            })
            .collect()
    }

    fn add_blocking_clause(&mut self, cube: &Cube) {
        let clause = self.blocking_clause(cube);
        self.solver.add_clause(&clause);
    }

    /// Bulk-loads the blocking clauses of many cubes through the
    /// solver's reserved-arena path (used when a new frame solver is
    /// created and must absorb every clause valid at its level).
    fn add_blocking_clauses<'c>(&mut self, cubes: impl IntoIterator<Item = &'c Cube>) {
        let clauses: Vec<Vec<Lit>> = cubes.into_iter().map(|c| self.blocking_clause(c)).collect();
        let lits: usize = clauses.iter().map(Vec::len).sum();
        self.solver.reserve_clauses(clauses.len(), lits);
        self.solver.add_clauses(clauses.iter().map(Vec::as_slice));
    }

    fn model_state(&self, n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| self.solver.value(self.latch_lits[i]).unwrap_or(false))
            .collect()
    }

    fn model_inputs(&self) -> Vec<bool> {
        self.input_lits
            .iter()
            .map(|&l| self.solver.value(l).unwrap_or(false))
            .collect()
    }

    /// Index of the bad output that fired in the current model.
    fn fired_bad(&self) -> usize {
        self.bad_lits
            .iter()
            .position(|&l| self.solver.value(l) == Some(true))
            .unwrap_or(0)
    }
}

/// A proof obligation: the full state `state` (with blocking cube
/// `cube`) must be excluded from frame `level`, or a counterexample
/// exists. `parent` points into the obligation arena for trace
/// reconstruction; `inputs_to_parent` drives `state` into the parent.
#[derive(Clone, Debug)]
struct Obligation {
    level: u32,
    cube: Cube,
    state: Vec<bool>,
    parent: Option<usize>,
    inputs_to_parent: Vec<bool>,
    /// Inputs under which the *bad output itself* fires (only for the
    /// root obligation extracted from the bad query).
    bad_inputs: Vec<bool>,
    bad_index: usize,
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    level: u32,
    seq: u64,
    arena_index: usize,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (level, seq) via reversed comparison.
        other.level.cmp(&self.level).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The per-frame-solver PDR baseline.
#[derive(Clone, Debug, Default)]
pub struct PerFramePdr {
    /// Resource limits (`max_depth` bounds the number of frames).
    pub budget: Budget,
}

impl PerFramePdr {
    /// Creates a baseline PDR engine with the given budget.
    pub fn new(budget: Budget) -> PerFramePdr {
        PerFramePdr { budget }
    }
}

struct PdrRun<'s> {
    sys: &'s AigSystem,
    tpl: &'s TransitionTemplate,
    inv: &'s [LatchClause],
    budget: Budget,
    started: Instant,
    solvers: Vec<FrameSolver>,
    /// Delta-encoded frames: `frames[i]` holds cubes whose blocking
    /// clause is valid in frames `1..=i` (index 0 unused).
    frames: Vec<Vec<Cube>>,
    stats: EngineStats,
    seq: u64,
}

enum BlockResult {
    Blocked,
    Cex(Trace),
    Stopped(Unknown),
}

/// Answer of one relative-induction query.
enum RelQuery {
    /// SAT: a predecessor state (with inputs) reaches the cube.
    Pred(Predecessor),
    /// UNSAT: the cube is blocked; the generalized core cube.
    Blocked(Cube),
    /// The solver hit a limit; the engine-level reason.
    Stopped(Unknown),
}

impl<'s> PdrRun<'s> {
    fn state_to_cube(state: &[bool]) -> Cube {
        state.iter().enumerate().map(|(i, &v)| (i, v)).collect()
    }

    /// Whether the cube intersects the initial states (i.e. it contains
    /// no literal that disagrees with a fixed reset value).
    fn cube_intersects_init(&self, cube: &Cube) -> bool {
        !cube
            .iter()
            .any(|&(i, v)| self.sys.latches[i].init.is_some_and(|init| init != v))
    }

    fn ensure_solver(&mut self, level: usize) {
        while self.solvers.len() <= level {
            let initialized = self.solvers.is_empty();
            let mut fs = FrameSolver::new(self.sys, self.tpl, self.inv, initialized);
            // New frame solvers must contain every clause valid at
            // their level: F_i = ∪_{j>=i} frames[j]. The whole reload
            // goes through the solver's bulk-add path.
            let lvl = self.solvers.len();
            fs.add_blocking_clauses(
                self.frames
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j >= lvl)
                    .flat_map(|(_, cubes)| cubes.iter()),
            );
            self.solvers.push(fs);
        }
    }

    /// Stamps the final statistics (summing every frame solver) into an
    /// outcome.
    fn outcome(&mut self, verdict: Verdict, started: Instant) -> CheckOutcome {
        self.stats
            .set_solver_stats(self.solvers.iter().map(|f| f.solver.stats()));
        CheckOutcome::finish(verdict, self.stats.clone(), started)
    }

    fn add_blocked(&mut self, cube: Cube, level: usize) {
        while self.frames.len() <= level {
            self.frames.push(Vec::new());
        }
        for i in 1..=level.min(self.solvers.len() - 1) {
            self.solvers[i].add_blocking_clause(&cube);
        }
        self.frames[level].push(cube);
    }

    /// Relative-induction query: is `cube` (as next-state) reachable
    /// from `F_{level-1} ∧ ¬cube`? On UNSAT returns the generalized
    /// core cube.
    fn query_relative(&mut self, cube: &Cube, level: usize) -> RelQuery {
        let fs = &mut self.solvers[level - 1];
        // Temporary ¬cube clause guarded by an activation literal.
        let act = Lit::pos(fs.solver.new_var());
        let mut clause: Vec<Lit> = vec![!act];
        for &(i, v) in cube {
            clause.push(if v {
                !fs.latch_lits[i]
            } else {
                fs.latch_lits[i]
            });
        }
        fs.solver.add_clause(&clause);
        let mut assumptions = vec![act];
        for &(i, v) in cube {
            assumptions.push(if v { fs.next_lits[i] } else { !fs.next_lits[i] });
        }
        self.stats.sat_queries += 1;
        let limits = self.budget.sat_limits(self.started);
        let result = fs.solver.solve_limited(&assumptions, limits);
        match result {
            SolveResult::Sat => {
                let state = fs.model_state(self.sys.latches.len());
                let inputs = fs.model_inputs();
                fs.solver.add_clause(&[!act]);
                RelQuery::Pred((state, inputs))
            }
            SolveResult::Unsat => {
                let failed: Vec<Lit> = fs.solver.failed_assumptions().to_vec();
                fs.solver.add_clause(&[!act]);
                // Keep cube literals whose next-state assumption is in
                // the failed core.
                let mut core: Cube = cube
                    .iter()
                    .filter(|&&(i, v)| {
                        let al = if v {
                            self.solvers[level - 1].next_lits[i]
                        } else {
                            !self.solvers[level - 1].next_lits[i]
                        };
                        failed.contains(&al)
                    })
                    .copied()
                    .collect();
                // The generalized cube must still exclude the initial
                // states; re-add a disagreeing literal if the core lost
                // them all.
                if self.cube_intersects_init(&core) {
                    if let Some(&lit) = cube
                        .iter()
                        .find(|&&(i, v)| self.sys.latches[i].init.is_some_and(|init| init != v))
                    {
                        core.push(lit);
                        core.sort_unstable();
                    }
                }
                RelQuery::Blocked(core)
            }
            SolveResult::Unknown(why) => {
                fs.solver.add_clause(&[!act]);
                RelQuery::Stopped(why.into())
            }
        }
    }

    /// Tries to drop further literals from a relatively-inductive cube.
    fn shrink(&mut self, mut cube: Cube, level: usize) -> Result<Cube, Unknown> {
        let mut i = 0;
        while i < cube.len() {
            if cube.len() <= 1 {
                break;
            }
            if let Some(u) = self.budget.interruption(self.started) {
                return Err(u);
            }
            let mut candidate = cube.clone();
            candidate.remove(i);
            if self.cube_intersects_init(&candidate) {
                i += 1;
                continue;
            }
            match self.query_relative(&candidate, level) {
                RelQuery::Blocked(core) => {
                    cube = if self.cube_intersects_init(&core) {
                        candidate
                    } else {
                        core
                    };
                    i = 0;
                }
                RelQuery::Pred(_) => {
                    i += 1;
                }
                RelQuery::Stopped(u) => return Err(u),
            }
        }
        Ok(cube)
    }

    fn reconstruct_trace(
        &self,
        arena: &[Obligation],
        leaf: usize,
        init_state: Vec<bool>,
        init_inputs: Vec<bool>,
    ) -> Trace {
        // Path: init_state --init_inputs--> arena[leaf].state --...--> bad.
        let mut states = vec![init_state];
        let mut inputs = vec![init_inputs];
        let mut cur = Some(leaf);
        let mut bad_inputs = Vec::new();
        let mut bad_index = 0;
        while let Some(i) = cur {
            let ob = &arena[i];
            states.push(ob.state.clone());
            if ob.parent.is_some() {
                inputs.push(ob.inputs_to_parent.clone());
            } else {
                inputs.push(ob.bad_inputs.clone());
                bad_index = ob.bad_index;
            }
            bad_inputs = ob.bad_inputs.clone();
            cur = ob.parent;
        }
        let _ = bad_inputs;
        Trace {
            states,
            inputs,
            bad_index,
        }
    }

    /// Blocks all bad states reachable within `level` frames.
    fn block_obligations(&mut self, root: Obligation, max_level: usize) -> BlockResult {
        let mut arena: Vec<Obligation> = vec![root];
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
        queue.push(QueueEntry {
            level: arena[0].level,
            seq: self.next_seq(),
            arena_index: 0,
        });
        while let Some(entry) = queue.pop() {
            if let Some(u) = self.budget.interruption(self.started) {
                return BlockResult::Stopped(u);
            }
            let (level, cube) = {
                let ob = &arena[entry.arena_index];
                (ob.level as usize, ob.cube.clone())
            };
            // Already blocked by a stronger clause?
            if self.cube_is_blocked(&cube, level) {
                continue;
            }
            if level == 0 {
                unreachable!("level-0 obligations are resolved at creation");
            }
            match self.query_relative(&cube, level) {
                RelQuery::Stopped(u) => return BlockResult::Stopped(u),
                RelQuery::Pred((pred_state, pred_inputs)) => {
                    // A predecessor exists in F_{level-1}.
                    if level == 1 {
                        // Predecessor lies in the initial states: cex.
                        return BlockResult::Cex(self.reconstruct_trace(
                            &arena,
                            entry.arena_index,
                            pred_state,
                            pred_inputs,
                        ));
                    }
                    let pred_cube = Self::state_to_cube(&pred_state);
                    let pred = Obligation {
                        level: level as u32 - 1,
                        cube: pred_cube,
                        state: pred_state,
                        parent: Some(entry.arena_index),
                        inputs_to_parent: pred_inputs,
                        bad_inputs: Vec::new(),
                        bad_index: 0,
                    };
                    arena.push(pred);
                    let pi = arena.len() - 1;
                    // Re-enqueue both: the predecessor (one level down)
                    // and the original obligation.
                    queue.push(QueueEntry {
                        level: level as u32 - 1,
                        seq: self.next_seq(),
                        arena_index: pi,
                    });
                    queue.push(QueueEntry {
                        level: level as u32,
                        seq: self.next_seq(),
                        arena_index: entry.arena_index,
                    });
                }
                RelQuery::Blocked(core) => {
                    // Blocked: generalize further and store the clause.
                    let gen = match self.shrink(core, level) {
                        Ok(g) => g,
                        Err(u) => return BlockResult::Stopped(u),
                    };
                    // Push the clause as far forward as it stays
                    // relatively inductive.
                    let mut at = level;
                    while at < max_level {
                        match self.query_relative(&gen, at + 1) {
                            RelQuery::Blocked(_) => at += 1,
                            RelQuery::Pred(_) => break,
                            RelQuery::Stopped(u) => return BlockResult::Stopped(u),
                        }
                    }
                    self.add_blocked(gen, at);
                    // Re-enqueue at the next level to chase deeper cex.
                    if (at as u32) < max_level as u32 {
                        let ob = arena[entry.arena_index].clone();
                        arena.push(Obligation {
                            level: at as u32 + 1,
                            ..ob
                        });
                        queue.push(QueueEntry {
                            level: at as u32 + 1,
                            seq: self.next_seq(),
                            arena_index: arena.len() - 1,
                        });
                    }
                }
            }
        }
        BlockResult::Blocked
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn cube_is_blocked(&mut self, cube: &Cube, level: usize) -> bool {
        // Syntactic check: some stored cube at >= level subsumes it.
        for (j, cubes) in self.frames.iter().enumerate() {
            if j < level {
                continue;
            }
            for c in cubes {
                if c.iter().all(|l| cube.contains(l)) {
                    return true;
                }
            }
        }
        false
    }

    /// Propagates clauses forward; returns the fixpoint level when two
    /// adjacent frames coincide (`frames[i]` emptied means
    /// `F_i = F_{i+1}`).
    fn propagate(&mut self, max_level: usize) -> Result<Option<usize>, Unknown> {
        for i in 1..max_level {
            let cubes = self.frames.get(i).cloned().unwrap_or_default();
            for cube in cubes {
                if let Some(u) = self.budget.interruption(self.started) {
                    return Err(u);
                }
                match self.query_relative(&cube, i + 1) {
                    RelQuery::Blocked(_) => {
                        // Holds one frame further: move it forward.
                        if let Some(pos) = self.frames[i].iter().position(|c| c == &cube) {
                            self.frames[i].remove(pos);
                        }
                        self.add_blocked(cube, i + 1);
                    }
                    RelQuery::Pred(_) => {}
                    RelQuery::Stopped(u) => return Err(u),
                }
            }
            if self.frames.get(i).is_none_or(Vec::is_empty) {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// The fixpoint frame `F_level` as a Safe-verdict witness (same
    /// delta-encoded export as single-solver PDR).
    fn export_invariant(&self, level: usize) -> crate::certify::Certificate {
        let mut clauses: Vec<LatchClause> = self
            .frames
            .iter()
            .skip(level)
            .flatten()
            .map(|cube| cube.iter().map(|&(i, v)| (i, !v)).collect())
            .collect();
        // The frame clauses are inductive only relative to the static
        // invariant asserted in every frame solver; fold it into the
        // exported witness so the certificate stands on its own.
        clauses.extend(self.inv.iter().cloned());
        crate::certify::Certificate::Clausal(crate::certify::ClausalInvariant { clauses })
    }
}

impl Checker for PerFramePdr {
    fn name(&self) -> &'static str {
        "pdr-frames"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        // Compile once, simplify once: every frame this run
        // instantiates inherits the preprocessed image.
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[])
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self.run(&blasted.sys, &blasted.template, &blasted.invariant.clauses);
        blasted.stamp(&mut out.stats);
        out
    }
}

impl PerFramePdr {
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> CheckOutcome {
        let started = Instant::now();
        let stats = EngineStats::default();

        let mut run = PdrRun {
            sys,
            tpl,
            inv,
            budget: self.budget.clone(),
            started,
            solvers: Vec::new(),
            frames: vec![Vec::new()],
            stats,
            seq: 0,
        };

        // Level 0: Init ∧ Bad?
        run.ensure_solver(0);
        run.stats.sat_queries += 1;
        let bad0 = run.solvers[0].bad_lit;
        let limits = run.budget.sat_limits(started);
        match run.solvers[0].solver.solve_limited(&[bad0], limits) {
            SolveResult::Sat => {
                let state = run.solvers[0].model_state(sys.latches.len());
                let inputs = run.solvers[0].model_inputs();
                let bad_index = run.solvers[0].fired_bad();
                let trace = Trace {
                    states: vec![state],
                    inputs: vec![inputs],
                    bad_index,
                };
                return run.outcome(Verdict::Unsafe(trace), started);
            }
            SolveResult::Unknown(why) => return run.outcome(Verdict::Unknown(why.into()), started),
            SolveResult::Unsat => {}
        }

        let mut max_level: usize = 1;
        loop {
            if let Some(u) = run.budget.interruption(started) {
                return run.outcome(Verdict::Unknown(u), started);
            }
            if max_level as u32 > self.budget.max_depth {
                return run.outcome(Verdict::Unknown(Unknown::BoundReached), started);
            }
            run.stats.depth = max_level as u32;
            run.ensure_solver(max_level);

            // Find a bad state in F_max.
            run.stats.sat_queries += 1;
            let bad = run.solvers[max_level].bad_lit;
            let limits = run.budget.sat_limits(started);
            match run.solvers[max_level].solver.solve_limited(&[bad], limits) {
                SolveResult::Sat => {
                    let state = run.solvers[max_level].model_state(sys.latches.len());
                    let bad_inputs = run.solvers[max_level].model_inputs();
                    let bad_index = run.solvers[max_level].fired_bad();
                    let cube = PdrRun::state_to_cube(&state);
                    if run.cube_intersects_init(&cube) {
                        // Bad state inside init was excluded at level 0
                        // unless it needs inputs; treat as cex directly.
                        let trace = Trace {
                            states: vec![state],
                            inputs: vec![bad_inputs],
                            bad_index,
                        };
                        return run.outcome(Verdict::Unsafe(trace), started);
                    }
                    let root = Obligation {
                        level: max_level as u32,
                        cube,
                        state,
                        parent: None,
                        inputs_to_parent: Vec::new(),
                        bad_inputs,
                        bad_index,
                    };
                    match run.block_obligations(root, max_level) {
                        BlockResult::Blocked => {}
                        BlockResult::Cex(trace) => {
                            return run.outcome(Verdict::Unsafe(trace), started);
                        }
                        BlockResult::Stopped(u) => {
                            return run.outcome(Verdict::Unknown(u), started);
                        }
                    }
                }
                SolveResult::Unsat => {
                    // Frame clear: extend and propagate.
                    max_level += 1;
                    run.ensure_solver(max_level);
                    match run.propagate(max_level) {
                        Ok(Some(level)) => {
                            let cert = run.export_invariant(level);
                            return run.outcome(Verdict::Safe, started).with_certificate(cert);
                        }
                        Ok(None) => {}
                        Err(u) => return run.outcome(Verdict::Unknown(u), started),
                    }
                }
                SolveResult::Unknown(why) => {
                    return run.outcome(Verdict::Unknown(why.into()), started);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the pre-template behaviour: every new frame
    /// solver is a constant-size bulk load of the shared template (plus
    /// the blocked clauses valid at its level) — `ensure_solver` must
    /// not re-run Tseitin per frame or grow with the frame index.
    #[test]
    fn ensure_solver_adds_constant_clauses_per_frame() {
        let ts = crate::bmc::tests::counter_ts(200, 8);
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let mut run = PdrRun {
            sys: &sys,
            tpl: &tpl,
            inv: &[],
            budget: Budget {
                timeout: None,
                ..Budget::default()
            },
            started: Instant::now(),
            solvers: Vec::new(),
            frames: vec![Vec::new()],
            stats: EngineStats::default(),
            seq: 0,
        };
        run.ensure_solver(6);
        let counts: Vec<usize> = run.solvers.iter().map(|f| f.solver.num_clauses()).collect();
        // No blocked cubes were added, so frames 1.. are pure template
        // loads: identical clause counts, bounded by the template size.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert_eq!(c, counts[1], "frame solver {i} deviates: {counts:?}");
            assert!(c <= tpl.num_frame_clauses());
        }
    }

    /// The baseline stays a working engine: it is the reference side of
    /// the `pdrperf` comparison and the verdict cross-check tests.
    #[test]
    fn baseline_still_verifies() {
        let ts = crate::kind::tests::trap_ts();
        let out = PerFramePdr::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
        for depth in [0u64, 3] {
            let ts = crate::bmc::tests::counter_ts(depth, 8);
            match PerFramePdr::default().check(&ts).outcome {
                Verdict::Unsafe(trace) => {
                    assert_eq!(trace.length() as u64, depth);
                    let sys = aig::blast_system(&ts);
                    assert!(trace.replays_on(&sys));
                }
                other => panic!("expected Unsafe at depth {depth}, got {other:?}"),
            }
        }
    }
}
