//! IC3 / Property Directed Reachability (Bradley 2011, Eén et al. 2011)
//! over a **single incremental SAT solver**.
//!
//! The "ABC-pdr" configuration of the paper's Figure 5 — the engine the
//! paper finds to be the only one proving the hard FIFO and BufAl
//! benchmarks. Frames of blocked cubes over-approximate the states
//! reachable in at most `i` steps; proof obligations are discharged by
//! relative-induction queries with unsat-core generalization, and
//! clauses are propagated forward until two adjacent frames coincide.
//!
//! # Architecture: one solver, activation-literal frame indexing
//!
//! Where the historical engine ([`crate::pdr_baseline`]) gave every
//! frame a private solver with its own copy of the transition relation,
//! this engine loads the shared [`TransitionTemplate`] **once** into
//! one incremental [`satb::Solver`] and selects frame context with
//! activation literals, the way modern IC3 implementations and
//! portfolio verifiers (CPAchecker 3.0, rIC3) drive one solver per
//! analysis:
//!
//! * Frame `i` owns a persistent activation variable `act_i`. The
//!   blocking clause of a cube stored at level `j` (valid in frames
//!   `1..=j`, delta encoding) is guarded as `¬act_j ∨ ¬cube`; the
//!   frame-0 initial-state units are guarded by `act_0`. Because
//!   `F_i = ∪_{j≥i} frames[j]`, a query against `F_i` simply assumes
//!   the **tail** `act_i, act_{i+1}, …, act_N`.
//! * Each relative-induction query needs a temporary `¬cube` clause.
//!   Instead of the leak-a-var-and-unit-clause-per-query pattern, the
//!   clause is guarded by a **recycled** activation variable from
//!   [`satb::Solver::new_activation`]: after the query,
//!   [`satb::Solver::release_activation`] frees the clause (and any
//!   learned clause derived from it) and returns the variable to a
//!   free-list. Peak arena memory no longer scales with frames ×
//!   template, and [`EngineStats::act_recycled`] makes the reuse
//!   observable.
//! * The template the run loads is the **preprocessed** clause image
//!   ([`TransitionTemplate::preprocess`]). Everything this engine
//!   assumes or guards lives outside the template's eliminable set:
//!   blocking clauses, initial-state units and obligation assumptions
//!   range over latch-current/next literals (frozen by the template's
//!   interface freeze set), and the frame/query activation variables
//!   are fresh solver-side variables that never existed in the
//!   template — so PDR's activation/assumption footprint is frozen by
//!   construction and the simplification cannot touch it.
//!
//! # Cube generalization by ternary simulation
//!
//! SAT answers (a bad state in `F_N`, or a predecessor driving into an
//! obligation cube) are widened with three-valued simulation
//! ([`aig::sim::TernarySim`]) before becoming proof obligations: each
//! latch literal is X-ed out and dropped when the fired bad output /
//! the next-state bits targeted by the parent cube (and every
//! environment constraint) keep their definite values, and the cube
//! stays disjoint from the initial states. One query then blocks many
//! states ([`EngineStats::ternary_drops`] counts the width gained).
//! UNSAT answers keep the failed-assumption core generalization — when
//! simulation has nothing to offer (it never applies to UNSAT results),
//! the engine falls back to exactly the historical shrinking. Because
//! obligation cubes now cover many states, counterexample traces are
//! reconstructed by *re-simulating* the netlist from the initial
//! predecessor through each obligation's recorded inputs, which the
//! ternary guarantee makes valid for every state in each cube.

use crate::certify::{clause_on, LatchClause};
use crate::parallel::{LemmaPublisher, SharedFrames, SHARDS};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
use aig::sim::{Tern, TernarySim};
use aig::{AigLit, AigSystem, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::{Domain, Lit, Part, SolveResult, Solver, Var};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// A cube: a partial assignment to latches, as (latch index, value)
/// pairs sorted by index.
pub(crate) type Cube = Vec<(usize, bool)>;

/// Chronological-backtracking threshold (conflicts whose asserting
/// level is more than this far below the conflict level step back one
/// level instead of long-jumping; see [`satb::Solver::set_chrono`]).
const CHRONO_THRESHOLD: u32 = 100;

/// Maximum counterexamples-to-generalization blocked per literal-drop
/// attempt in [`PdrRun::shrink`] (rIC3 ctg-down, depth 1).
const MAX_CTGS: usize = 3;

/// A SAT predecessor: (latch state, input vector) driving into a cube.
type Predecessor = (Vec<bool>, Vec<bool>);

/// SplitMix64 finalizer: a cheap, stateless per-latch jitter for
/// seeded shrink-order diversification.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether every literal of `small` occurs in `big` (both sorted by
/// latch index): the blocking clause of `small` implies `big`'s.
pub(crate) fn subsumes(small: &Cube, big: &Cube) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut j = 0;
    'literals: for &(i, v) in small {
        while j < big.len() {
            let (bi, bv) = big[j];
            j += 1;
            if bi == i {
                if bv == v {
                    continue 'literals;
                }
                return false;
            }
            if bi > i {
                return false;
            }
        }
        return false;
    }
    true
}

/// A proof obligation: every state of `cube` reaches a violation, so
/// the cube must be excluded from frame `level` — or a counterexample
/// exists. `parent` points into the obligation arena;
/// `inputs_to_parent` drives *any* state of the cube into the parent
/// cube (the ternary-simulation guarantee).
#[derive(Clone, Debug)]
struct Obligation {
    level: u32,
    cube: Cube,
    parent: Option<usize>,
    inputs_to_parent: Vec<bool>,
    /// Inputs under which the *bad output itself* fires (only for the
    /// root obligation extracted from the bad query).
    bad_inputs: Vec<bool>,
    bad_index: usize,
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    level: u32,
    seq: u64,
    arena_index: usize,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on level; among equal levels pop the *newest*
        // obligation first (reverse-chronological). Deep runs then
        // chase a freshly discovered predecessor chain depth-first
        // instead of round-robining over stale same-level obligations,
        // which keeps the relevant clauses hot in the solver and finds
        // counterexamples without re-proving old frontiers.
        other.level.cmp(&self.level).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// IC3/PDR engine.
#[derive(Clone, Debug)]
pub struct Pdr {
    /// Resource limits (`max_depth` bounds the number of frames).
    pub budget: Budget,
    /// Optional cross-seat lemma broadcast: frontier blocking clauses
    /// are published for k-induction / interpolation consumers (see
    /// [`crate::parallel`]).
    pub bus: Option<LemmaPublisher>,
    /// Cone-restricted query decision domains (on by default; the
    /// `qperf` benchmark A/Bs this switch).
    pub domains: bool,
    /// Chronological backtracking in the query solver (on by default).
    pub chrono: bool,
}

impl Default for Pdr {
    fn default() -> Pdr {
        Pdr {
            budget: Budget::default(),
            bus: None,
            domains: true,
            chrono: true,
        }
    }
}

impl Pdr {
    /// Creates a PDR engine with the given budget.
    pub fn new(budget: Budget) -> Pdr {
        Pdr {
            budget,
            ..Pdr::default()
        }
    }

    /// Attaches a cross-seat lemma publisher.
    #[must_use]
    pub fn with_bus(mut self, bus: LemmaPublisher) -> Pdr {
        self.bus = Some(bus);
        self
    }
}

/// Per-worker generalization diversification (rIC3-style): parallel
/// PDR gains from workers that explore *different* generalizations of
/// the same obligations, so each worker gets a seed (jittering shrink
/// order) and an on/off profile over the three generalization passes.
/// The default is the full tuned profile — solo PDR runs with
/// everything enabled.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Diversity {
    /// Jitter seed for shrink ordering tie-breaks.
    pub(crate) seed: u64,
    /// Ternary-simulation cube widening on SAT answers.
    pub(crate) ternary: bool,
    /// Input-based SAT-core predecessor lifting.
    pub(crate) lift: bool,
    /// Activity-ordered literal dropping in cube shrink.
    pub(crate) activity: bool,
    /// Cone-restricted decision domains on every SAT query.
    pub(crate) domain: bool,
    /// Chronological backtracking in the query solver.
    pub(crate) chrono: bool,
    /// Blocking counterexamples-to-generalization during shrink.
    pub(crate) ctg: bool,
}

impl Default for Diversity {
    fn default() -> Diversity {
        Diversity {
            seed: 0,
            ternary: true,
            lift: true,
            activity: true,
            domain: true,
            chrono: true,
            ctg: true,
        }
    }
}

impl Diversity {
    /// The profile of worker `w`: worker 0 is the tuned default (so a
    /// one-worker pool behaves exactly like solo PDR); each sibling
    /// disables one generalization dimension plus one solver-side
    /// heuristic, and seeds keep differing past four workers.
    pub(crate) fn for_worker(w: usize) -> Diversity {
        let base = Diversity {
            seed: w as u64,
            ..Diversity::default()
        };
        match w % 4 {
            1 => Diversity {
                lift: false,
                chrono: false,
                ..base
            },
            2 => Diversity {
                ternary: false,
                domain: false,
                ..base
            },
            3 => Diversity {
                activity: false,
                ctg: false,
                ..base
            },
            _ => base,
        }
    }
}

/// A worker's view of the shared frame store: the store handle, the
/// worker's identity (its own entries are skipped on sync) and one
/// read cursor per shard.
struct SharedCtx {
    store: Arc<SharedFrames>,
    worker: usize,
    cursors: [usize; SHARDS],
}

pub(crate) struct PdrRun<'s> {
    sys: &'s AigSystem,
    /// Certified static invariant, asserted unguarded on the latch
    /// current-state literals (valid in every frame context, F∞
    /// included) and appended to the exported fixpoint certificate.
    inv: &'s [LatchClause],
    budget: Budget,
    started: Instant,
    /// The run's only solver: one template load, context-selected.
    solver: Solver,
    /// Current-state literal per latch.
    latch_lits: Vec<Lit>,
    /// Next-state literal per latch.
    next_lits: Vec<Lit>,
    input_lits: Vec<Lit>,
    bad_lits: Vec<Lit>,
    bad_lit: Lit,
    /// Frame activation literals: `acts[i]` guards the clauses stored
    /// at level `i` (and, for `i == 0`, the initial-state units).
    acts: Vec<Lit>,
    /// Delta-encoded frames: `frames[i]` holds cubes whose blocking
    /// clause is valid in frames `1..=i` (index 0 unused). Cubes are
    /// kept sorted and mutually non-subsumed.
    frames: Vec<Vec<Cube>>,
    /// Ternary evaluator over the latch cone, shared by all trials.
    sim: TernarySim,
    /// Scratch three-valued state for generalization trials.
    state_t: Vec<Tern>,
    /// Scratch assumption vector (frame tail + query literals).
    assumptions: Vec<Lit>,
    /// Reusable per-query decision domain (cleared and refilled before
    /// each solve when `div.domain` is on).
    dom: Domain,
    /// Solver variables every query domain starts from: latch
    /// current-state, primary inputs, and the constraint cone — the
    /// vocabulary of every frame clause, initial-state unit and
    /// invariant clause this engine ever asserts.
    base_dom: Vec<Var>,
    /// Per-latch next-state fanin cone, mapped to solver variables
    /// ([`TransitionTemplate::latch_next_cone`] through the frame).
    next_cones: Vec<Vec<Var>>,
    /// The union bad cone (every bad output plus the any-bad OR).
    bad_cone: Vec<Var>,
    /// Scratch target-output list for ternary trials.
    targets: Vec<(AigLit, bool)>,
    stats: EngineStats,
    seq: u64,
    /// Generalization profile (diversified per worker in parallel
    /// runs; the tuned default otherwise).
    div: Diversity,
    /// Per-latch activity for shrink ordering: bumped when a latch
    /// appears in a freshly blocked cube, decayed multiplicatively.
    activity: Vec<f64>,
    /// Current activity bump increment (MiniSat-style rescaling).
    act_inc: f64,
    /// Shared frame store of a parallel run (`None` when solo).
    shared: Option<SharedCtx>,
    /// Cross-seat lemma broadcast (`None` when not wired).
    bus: Option<LemmaPublisher>,
    /// The current frontier frame. Clauses stored here survived every
    /// propagation so far — the best broadcast candidates (consumers
    /// re-verify inductiveness on their side regardless).
    max_level: usize,
}

enum BlockResult {
    Blocked,
    Cex(Trace),
    Stopped(Unknown),
}

/// Answer of one relative-induction query.
enum RelQuery {
    /// SAT: a predecessor state (with inputs) reaches the cube.
    Pred(Predecessor),
    /// UNSAT: the cube is blocked; the generalized core cube.
    Blocked(Cube),
    /// The solver hit a limit; the engine-level reason.
    Stopped(Unknown),
}

impl<'s> PdrRun<'s> {
    pub(crate) fn new(
        sys: &'s AigSystem,
        tpl: &TransitionTemplate,
        inv: &'s [LatchClause],
        budget: Budget,
    ) -> PdrRun<'s> {
        let started = Instant::now();
        let mut solver = Solver::new();
        let vars = tpl.instantiate(&mut solver, Part::A, 0);
        // The invariant holds in every frame — F_0 = Init satisfies it
        // by initiation, every F_i may assume it by consecution — so
        // its clauses are asserted unguarded: they seed F∞ directly
        // and prune every relative-induction query.
        for clause in inv {
            solver.add_clause(&clause_on(clause, &vars.latch_cur));
        }
        solver.set_chrono(Some(CHRONO_THRESHOLD));
        // Precompute the query-scoping sets once per run: the base
        // vocabulary and the per-latch next-state cones, mapped from
        // template to solver variables through the instantiated frame.
        // A scratch domain deduplicates each set.
        let mut dom = Domain::new();
        vars.extend_domain_base(tpl, &mut dom);
        let base_dom = dom.vars().to_vec();
        let next_cones: Vec<Vec<Var>> = (0..sys.latches.len())
            .map(|i| {
                dom.clear();
                vars.extend_domain(&mut dom, tpl.latch_next_cone(i));
                dom.vars().to_vec()
            })
            .collect();
        dom.clear();
        vars.extend_domain(&mut dom, tpl.any_bad_cone());
        let bad_cone = dom.vars().to_vec();
        dom.clear();
        let mut run = PdrRun {
            sys,
            inv,
            budget,
            started,
            solver,
            latch_lits: vars.latch_cur,
            next_lits: vars.latch_next,
            input_lits: vars.inputs,
            bad_lits: vars.bads,
            bad_lit: vars.any_bad,
            acts: Vec::new(),
            frames: vec![Vec::new()],
            sim: TernarySim::new(sys),
            state_t: vec![Tern::X; sys.latches.len()],
            assumptions: Vec::new(),
            dom,
            base_dom,
            next_cones,
            bad_cone,
            targets: Vec::new(),
            stats: EngineStats::default(),
            seq: 0,
            div: Diversity::default(),
            activity: vec![0.0; sys.latches.len()],
            act_inc: 1.0,
            shared: None,
            bus: None,
            max_level: 1,
        };
        run.ensure_act(0);
        // Initial-state units, guarded by the frame-0 activation
        // group so deeper contexts are free of them.
        let act0 = run.acts[0];
        for (i, latch) in sys.latches.iter().enumerate() {
            if let Some(init) = latch.init {
                let l = run.latch_lits[i];
                run.solver
                    .add_clause_activated(act0, &[if init { l } else { !l }]);
            }
        }
        run
    }

    /// Sets the generalization profile (parallel workers diversify).
    pub(crate) fn set_diversity(&mut self, div: Diversity) {
        self.div = div;
        self.solver
            .set_chrono(div.chrono.then_some(CHRONO_THRESHOLD));
    }

    /// Joins a shared frame store as worker `worker`.
    pub(crate) fn attach_shared(&mut self, store: Arc<SharedFrames>, worker: usize) {
        self.shared = Some(SharedCtx {
            store,
            worker,
            cursors: [0; SHARDS],
        });
    }

    /// Wires the cross-seat lemma broadcast.
    pub(crate) fn attach_bus(&mut self, bus: LemmaPublisher) {
        self.bus = Some(bus);
    }

    /// Creates frame activation groups up to `level`. Frames are
    /// proper activation groups ([`satb::Solver::new_activation`]) so
    /// stored clauses — including foreign cubes synced from the shared
    /// store — ride the same registered-guard machinery as query
    /// clauses; frame groups are simply never released.
    fn ensure_act(&mut self, level: usize) {
        while self.acts.len() <= level {
            let act = self.solver.new_activation();
            self.acts.push(act);
        }
    }

    fn state_to_cube(state: &[bool]) -> Cube {
        state.iter().enumerate().map(|(i, &v)| (i, v)).collect()
    }

    /// Whether the cube intersects the initial states (i.e. it contains
    /// no literal that disagrees with a fixed reset value).
    fn cube_intersects_init(&self, cube: &Cube) -> bool {
        !cube
            .iter()
            .any(|&(i, v)| self.sys.latches[i].init.is_some_and(|init| init != v))
    }

    /// Stamps the final statistics into an outcome.
    fn outcome(&mut self, verdict: Verdict, started: Instant) -> CheckOutcome {
        self.stats.set_solver_stats([self.solver.stats()]);
        CheckOutcome::finish(verdict, self.stats.clone(), started)
    }

    fn model_state(&self) -> Vec<bool> {
        self.latch_lits
            .iter()
            .map(|&l| self.solver.value(l).unwrap_or(false))
            .collect()
    }

    fn model_inputs(&self) -> Vec<bool> {
        self.input_lits
            .iter()
            .map(|&l| self.solver.value(l).unwrap_or(false))
            .collect()
    }

    /// Index of the bad output that fired in the current model.
    fn fired_bad(&self) -> usize {
        self.bad_lits
            .iter()
            .position(|&l| self.solver.value(l) == Some(true))
            .unwrap_or(0)
    }

    /// Assumption prefix selecting frame context `F_level`: the tail of
    /// frame activation literals from `level` up.
    fn push_frame_tail(&mut self, level: usize) {
        self.assumptions.clear();
        self.assumptions.extend(self.acts[level..].iter().copied());
    }

    /// Rebuilds the reusable decision domain for the current assumption
    /// vector: the base vocabulary (latch-current, inputs, constraint
    /// cone), every assumption variable (frame and query activation
    /// guards, next-state roots) and the next-state fanin cones of
    /// `cube`'s latches — exactly the fanin-closed set the
    /// [`satb::domain`] soundness contract asks for. Blocking clauses
    /// whose frame guard is below the assumed tail keep an unassigned
    /// out-of-domain guard literal and can never be falsified, so they
    /// don't constrain the query.
    fn fill_query_domain(&mut self, cube: &Cube) {
        self.dom.clear();
        self.dom.extend(self.base_dom.iter().copied());
        self.dom.extend(self.assumptions.iter().map(|l| l.var()));
        for &(i, _) in cube {
            self.dom.extend(self.next_cones[i].iter().copied());
        }
    }

    /// Rebuilds the reusable decision domain for a bad-state query
    /// (`F_level ∧ bad`): the base vocabulary, the assumed frame tail
    /// and the union bad cone.
    fn fill_bad_domain(&mut self) {
        self.dom.clear();
        self.dom.extend(self.base_dom.iter().copied());
        self.dom.extend(self.assumptions.iter().map(|l| l.var()));
        self.dom.extend(self.bad_cone.iter().copied());
    }

    /// Runs the prepared query (`self.assumptions`), cone-restricted
    /// when the profile enables domains — in which case the caller
    /// must have filled `self.dom` first.
    fn solve_prepared(&mut self) -> SolveResult {
        let limits = self.budget.sat_limits(self.started);
        if self.div.domain {
            self.solver
                .solve_with_domain(&self.assumptions, limits, &self.dom)
        } else {
            self.solver.solve_limited(&self.assumptions, limits)
        }
    }

    /// Stores a blocked cube at `level`: one guarded solver clause
    /// (through the prenormalized cube-import fast path — cube literals
    /// are sorted over distinct latches by construction), plus registry
    /// upkeep — any stored cube subsumed by the new one (at a level the
    /// new clause covers) is pruned so the syntactic blocked-check
    /// stays small. Publishes the cube to the shared store / lemma bus
    /// when the run is wired into a parallel pool or portfolio.
    fn add_blocked(&mut self, cube: Cube, level: usize) {
        while self.frames.len() <= level {
            self.frames.push(Vec::new());
        }
        let clause: Vec<Lit> = cube
            .iter()
            .map(|&(i, v)| {
                if v {
                    !self.latch_lits[i]
                } else {
                    self.latch_lits[i]
                }
            })
            .collect();
        self.solver
            .add_clause_activated_prenormalized(self.acts[level], &clause);
        if self.div.activity {
            self.bump_activity(&cube);
        }
        self.publish(&cube, level);
        for j in 1..=level {
            self.frames[j].retain(|d| !subsumes(&cube, d));
        }
        self.frames[level].push(cube);
    }

    /// Shares a freshly blocked cube: into the shared frame store (any
    /// level; the store subsumption-checks on insert) and, for frontier
    /// clauses, onto the cross-seat lemma bus. Re-published imports are
    /// deduplicated by the store's subsumption check, so the counter
    /// only grows for genuinely new knowledge.
    fn publish(&mut self, cube: &Cube, level: usize) {
        let mut exported = false;
        if let Some(ctx) = &self.shared {
            if ctx.store.publish(level, cube.clone(), ctx.worker) {
                exported = true;
            }
        }
        if level >= self.max_level {
            if let Some(bus) = &self.bus {
                let clause: LatchClause = cube.iter().map(|&(i, v)| (i, !v)).collect();
                bus.publish(&clause);
                exported = true;
            }
        }
        if exported {
            self.stats.lemmas_exported += 1;
        }
    }

    /// Bumps the shrink-ordering activity of every latch in a freshly
    /// blocked cube (rIC3 `activity.rs` style): the increment grows
    /// multiplicatively, which decays older bumps, and everything is
    /// rescaled before the counters overflow.
    fn bump_activity(&mut self, cube: &Cube) {
        for &(i, _) in cube {
            self.activity[i] += self.act_inc;
        }
        self.act_inc /= 0.99;
        if self.act_inc > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// Imports peers' cubes published to the shared store since the
    /// last sync (called at the solve-loop head and before each
    /// obligation burst). Every foreign cube is **re-verified** by a
    /// local relative-induction query before it is stored: the peer
    /// proved it relative to *its* frames, which this worker may not
    /// have imported (and the level may be clamped to our frontier), so
    /// storing unverified would break the per-cube invariant the
    /// fixpoint certificate rests on. Verified cubes enter through
    /// [`add_blocked`](Self::add_blocked) — often further generalized by
    /// the query's failed-assumption core — and non-inductive ones are
    /// simply skipped (their information returns on a later sync once
    /// the supporting clauses arrive).
    fn sync_shared(&mut self) -> Option<Unknown> {
        let Some(ctx) = &mut self.shared else {
            return None;
        };
        let store = Arc::clone(&ctx.store);
        let worker = ctx.worker;
        let mut fresh: Vec<(usize, Cube)> = Vec::new();
        store.collect_foreign(worker, &mut ctx.cursors, &mut fresh);
        if fresh.is_empty() {
            return None;
        }
        self.stats.sync_rounds += 1;
        for (level, cube) in fresh {
            if let Some(u) = self.budget.interruption(self.started) {
                return Some(u);
            }
            // Clamping to our frontier is sound: a cube valid in frames
            // `1..=L` is valid in any prefix of them.
            let level = level.min(self.max_level);
            if level == 0 || self.cube_intersects_init(&cube) {
                continue;
            }
            if self.cube_is_blocked(&cube, level) {
                continue;
            }
            match self.query_relative(&cube, level) {
                RelQuery::Blocked(core) => {
                    let core = if self.cube_intersects_init(&core) {
                        cube
                    } else {
                        core
                    };
                    self.add_blocked(core, level);
                    self.stats.lemmas_imported += 1;
                }
                RelQuery::Pred(_) => {}
                RelQuery::Stopped(u) => return Some(u),
            }
        }
        None
    }

    /// Syntactic blocked-check: some stored cube at `>= level` subsumes
    /// the query cube (sorted two-pointer scan, short-circuiting).
    fn cube_is_blocked(&self, cube: &Cube, level: usize) -> bool {
        self.frames
            .iter()
            .skip(level)
            .any(|cubes| cubes.iter().any(|d| subsumes(d, cube)))
    }

    /// Widens a SAT model cube by ternary simulation: X-es out each
    /// latch whose removal keeps every `targets` output at its required
    /// value (and the cube disjoint from the initial states). Returns
    /// the widened cube; `self.targets` holds the outputs to preserve.
    fn ternary_generalize(&mut self, state: &[bool], inputs: &[bool]) -> Cube {
        if !self.div.ternary {
            // Diversified workers may disable widening; the full model
            // state is the (trivially sound) cube, and SAT-core lifting
            // still generalizes it afterwards.
            return Self::state_to_cube(state);
        }
        let n = state.len();
        for (i, &b) in state.iter().enumerate() {
            self.state_t[i] = Tern::from_bool(b);
        }
        // Literals distinguishing the cube from the initial states;
        // the last one can never be dropped.
        let mut distinguishing = (0..n)
            .filter(|&i| {
                self.sys.latches[i]
                    .init
                    .is_some_and(|init| init != state[i])
            })
            .count();
        for i in 0..n {
            // A wide state vector means many ternary trials; bail out
            // mid-widening when the budget expires (keeping the
            // remaining literals definite is always sound — the cube
            // is merely less general).
            if self.budget.interruption(self.started).is_some() {
                break;
            }
            let distinguishes = self.sys.latches[i]
                .init
                .is_some_and(|init| init != state[i]);
            if distinguishes && distinguishing == 1 {
                continue;
            }
            self.state_t[i] = Tern::X;
            self.sim.eval(self.sys, &self.state_t, inputs);
            let ok = self
                .targets
                .iter()
                .all(|&(l, want)| self.sim.value(l).known() == Some(want));
            if ok {
                // The latch stays X: dropped from the cube below.
                self.stats.ternary_drops += 1;
                if distinguishes {
                    distinguishing -= 1;
                }
            } else {
                self.state_t[i] = Tern::from_bool(state[i]);
            }
        }
        (0..n)
            .filter(|&i| self.state_t[i] != Tern::X)
            .map(|i| (i, state[i]))
            .collect()
    }

    /// Sets up `self.targets` for widening a predecessor of `cube`:
    /// the targeted next-state bits plus every constraint.
    fn pred_targets(&mut self, cube: &Cube) {
        self.targets.clear();
        self.targets
            .extend(cube.iter().map(|&(i, v)| (self.sys.latches[i].next, v)));
        self.targets
            .extend(self.sys.constraints.iter().map(|&c| (c, true)));
    }

    /// Sets up `self.targets` for widening a bad state: the fired bad
    /// output plus every constraint.
    fn bad_targets(&mut self, bad_index: usize) {
        self.targets.clear();
        self.targets.push((self.sys.bads[bad_index], true));
        self.targets
            .extend(self.sys.constraints.iter().map(|&c| (c, true)));
    }

    /// Relative-induction query: is `cube` (as next-state) reachable
    /// from `F_{level-1} ∧ ¬cube`? On UNSAT returns the generalized
    /// core cube. The temporary ¬cube clause rides on a recycled
    /// activation variable and is released either way.
    fn query_relative(&mut self, cube: &Cube, level: usize) -> RelQuery {
        let act = self.solver.new_activation();
        let clause: Vec<Lit> = cube
            .iter()
            .map(|&(i, v)| {
                if v {
                    !self.latch_lits[i]
                } else {
                    self.latch_lits[i]
                }
            })
            .collect();
        self.solver.add_clause_activated(act, &clause);
        self.push_frame_tail(level - 1);
        self.assumptions.push(act);
        for &(i, v) in cube {
            self.assumptions.push(if v {
                self.next_lits[i]
            } else {
                !self.next_lits[i]
            });
        }
        self.stats.sat_queries += 1;
        if self.div.domain {
            self.fill_query_domain(cube);
        }
        let result = self.solve_prepared();
        match result {
            SolveResult::Sat => {
                let state = self.model_state();
                let inputs = self.model_inputs();
                self.solver.release_activation(act);
                RelQuery::Pred((state, inputs))
            }
            SolveResult::Unsat => {
                // Keep cube literals whose next-state assumption is in
                // the failed core — read straight off the solver's
                // slice, no per-query copy.
                let failed = self.solver.failed_assumptions();
                let next_lits = &self.next_lits;
                let mut core: Cube = cube
                    .iter()
                    .filter(|&&(i, v)| {
                        let al = if v { next_lits[i] } else { !next_lits[i] };
                        failed.contains(&al)
                    })
                    .copied()
                    .collect();
                self.solver.release_activation(act);
                // The generalized cube must still exclude the initial
                // states; re-add a disagreeing literal if the core lost
                // them all.
                if self.cube_intersects_init(&core) {
                    if let Some(&lit) = cube
                        .iter()
                        .find(|&&(i, v)| self.sys.latches[i].init.is_some_and(|init| init != v))
                    {
                        core.push(lit);
                        core.sort_unstable();
                    }
                }
                RelQuery::Blocked(core)
            }
            SolveResult::Unknown(why) => {
                self.solver.release_activation(act);
                RelQuery::Stopped(why.into())
            }
        }
    }

    /// Input-based predecessor lifting (gipsat `minimal_predecessor`
    /// style), stacked after ternary widening: assume the recorded
    /// input valuation plus the cube's latch literals against the
    /// negated target — ¬parent′ as an activated temporary clause for
    /// predecessor obligations, ¬bad for root obligations — and keep
    /// only the cube literals in the failed-assumption core. The query
    /// deliberately omits the frame tail: the resulting guarantee
    /// ("every state of the lifted cube steps into the target under
    /// these inputs") must rest on the transition relation and the
    /// certified static invariant alone, because counterexample
    /// reconstruction replays genuinely reachable states through the
    /// cube.
    ///
    /// When the design has environment constraints, the ternary targets
    /// include them but the SAT core does not track them, so a single
    /// ternary re-evaluation guards the lifted cube; any doubt falls
    /// back to the unlifted cube (sound — merely less general).
    fn lift_cube(
        &mut self,
        cube: Cube,
        inputs: &[bool],
        parent: Option<&Cube>,
        bad_index: usize,
    ) -> Cube {
        if !self.div.lift || cube.len() <= 1 {
            return cube;
        }
        self.assumptions.clear();
        let act = match parent {
            Some(p) => {
                let act = self.solver.new_activation();
                let clause: Vec<Lit> = p
                    .iter()
                    .map(|&(i, v)| {
                        if v {
                            !self.next_lits[i]
                        } else {
                            self.next_lits[i]
                        }
                    })
                    .collect();
                self.solver.add_clause_activated(act, &clause);
                self.assumptions.push(act);
                Some(act)
            }
            None => {
                self.assumptions.push(!self.bad_lits[bad_index]);
                None
            }
        };
        for (j, &b) in inputs.iter().enumerate() {
            self.assumptions.push(if b {
                self.input_lits[j]
            } else {
                !self.input_lits[j]
            });
        }
        for &(i, v) in &cube {
            self.assumptions.push(if v {
                self.latch_lits[i]
            } else {
                !self.latch_lits[i]
            });
        }
        self.stats.sat_queries += 1;
        if self.div.domain {
            // Lift queries carry no frame tail; the domain is the base
            // vocabulary, the assumption variables, and the target's
            // cone (the parent's next-state cones, or the bad cone for
            // root obligations). Only the UNSAT side is ever used, so a
            // domain-Sat merely skips the lift — sound either way.
            self.dom.clear();
            self.dom.extend(self.base_dom.iter().copied());
            self.dom.extend(self.assumptions.iter().map(|l| l.var()));
            match parent {
                Some(p) => {
                    for &(i, _) in p {
                        self.dom.extend(self.next_cones[i].iter().copied());
                    }
                }
                None => self.dom.extend(self.bad_cone.iter().copied()),
            }
        }
        let result = self.solve_prepared();
        let mut lifted: Option<Cube> = None;
        if result == SolveResult::Unsat {
            let failed = self.solver.failed_assumptions();
            let latch_lits = &self.latch_lits;
            let mut out: Cube = cube
                .iter()
                .filter(|&&(i, v)| {
                    let al = if v { latch_lits[i] } else { !latch_lits[i] };
                    failed.contains(&al)
                })
                .copied()
                .collect();
            if self.cube_intersects_init(&out) {
                if let Some(&l) = cube
                    .iter()
                    .find(|&&(i, v)| self.sys.latches[i].init.is_some_and(|init| init != v))
                {
                    out.push(l);
                    out.sort_unstable();
                }
            }
            if out.len() < cube.len() {
                lifted = Some(out);
            }
        }
        if let Some(a) = act {
            self.solver.release_activation(a);
        }
        let Some(out) = lifted else {
            return cube;
        };
        if !self.sys.constraints.is_empty() {
            for t in &mut self.state_t {
                *t = Tern::X;
            }
            for &(i, v) in &out {
                self.state_t[i] = Tern::from_bool(v);
            }
            self.sim.eval(self.sys, &self.state_t, inputs);
            let ok = self
                .targets
                .iter()
                .all(|&(l, want)| self.sim.value(l).known() == Some(want));
            if !ok {
                return cube;
            }
        }
        self.stats.lifted_lits += (cube.len() - out.len()) as u64;
        out
    }

    /// Tries to drop further literals from a relatively-inductive cube
    /// (the failed-assumption-core shrinking; the UNSAT-side
    /// counterpart of ternary widening). Drop candidates are ordered
    /// least-active first (rIC3 `activity.rs` style): latches that
    /// rarely appear in blocked cubes are the likeliest to be
    /// droppable, so trying them first reaches the final cube in fewer
    /// failed queries; the worker seed jitters ties (and the whole
    /// order when activity is disabled) for generalization diversity.
    fn shrink(&mut self, mut cube: Cube, level: usize) -> Result<Cube, Unknown> {
        loop {
            if cube.len() <= 1 {
                return Ok(cube);
            }
            let mut order: Vec<usize> = (0..cube.len()).collect();
            if self.div.activity {
                let activity = &self.activity;
                let seed = self.div.seed;
                order.sort_by(|&a, &b| {
                    let (la, lb) = (cube[a].0, cube[b].0);
                    activity[la]
                        .total_cmp(&activity[lb])
                        .then_with(|| mix(seed, la as u64).cmp(&mix(seed, lb as u64)))
                });
            } else if self.div.seed != 0 {
                let seed = self.div.seed;
                order.sort_by_key(|&p| mix(seed, cube[p].0 as u64));
            }
            let mut progressed = false;
            'drops: for &pos in &order {
                let mut candidate = cube.clone();
                candidate.remove(pos);
                if self.cube_intersects_init(&candidate) {
                    continue;
                }
                // A failed drop yields a counterexample-to-
                // generalization: a state of `F_{level-1}` that steps
                // into the candidate. ctg-down (rIC3 `mic.rs` style,
                // depth 1) tries to block up to [`MAX_CTGS`] of them
                // one frame down — each success strengthens
                // `F_{level-1}`, so retrying the same drop often turns
                // it inductive.
                let mut ctgs = 0;
                loop {
                    if let Some(u) = self.budget.interruption(self.started) {
                        return Err(u);
                    }
                    match self.query_relative(&candidate, level) {
                        RelQuery::Blocked(core) => {
                            cube = if self.cube_intersects_init(&core) {
                                candidate
                            } else {
                                core
                            };
                            progressed = true;
                            break 'drops;
                        }
                        RelQuery::Pred((state, _inputs)) => {
                            if !self.div.ctg || level <= 1 || ctgs >= MAX_CTGS {
                                break;
                            }
                            ctgs += 1;
                            let ctg = Self::state_to_cube(&state);
                            if self.cube_intersects_init(&ctg) {
                                break;
                            }
                            match self.query_relative(&ctg, level - 1) {
                                RelQuery::Blocked(core) => {
                                    let core = if self.cube_intersects_init(&core) {
                                        ctg
                                    } else {
                                        core
                                    };
                                    self.add_blocked(core, level - 1);
                                }
                                RelQuery::Pred(_) => break,
                                RelQuery::Stopped(u) => return Err(u),
                            }
                        }
                        RelQuery::Stopped(u) => return Err(u),
                    }
                }
            }
            if !progressed {
                return Ok(cube);
            }
        }
    }

    /// Rebuilds a concrete counterexample by simulation: from the
    /// initial-state predecessor, each obligation's recorded inputs
    /// drive any state of its cube into the next cube (the ternary
    /// guarantee), so stepping the netlist reproduces a replayable
    /// trace even though cubes cover many states.
    fn reconstruct_trace(
        &self,
        arena: &[Obligation],
        leaf: usize,
        init_state: Vec<bool>,
        init_inputs: Vec<bool>,
    ) -> Trace {
        let mut state = self.sys.step(&init_state, &init_inputs);
        let mut states = vec![init_state];
        let mut inputs = vec![init_inputs];
        let mut cur = Some(leaf);
        let mut bad_index = 0;
        while let Some(i) = cur {
            let ob = &arena[i];
            debug_assert!(
                ob.cube.iter().all(|&(i, v)| state[i] == v),
                "simulated state must land in the obligation cube"
            );
            states.push(state.clone());
            if ob.parent.is_some() {
                inputs.push(ob.inputs_to_parent.clone());
                state = self.sys.step(&state, &ob.inputs_to_parent);
            } else {
                inputs.push(ob.bad_inputs.clone());
                bad_index = ob.bad_index;
            }
            cur = ob.parent;
        }
        Trace {
            states,
            inputs,
            bad_index,
        }
    }

    /// Blocks all bad states reachable within `level` frames.
    fn block_obligations(&mut self, root: Obligation, max_level: usize) -> BlockResult {
        if let Some(u) = self.sync_shared() {
            return BlockResult::Stopped(u);
        }
        let mut arena: Vec<Obligation> = vec![root];
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
        queue.push(QueueEntry {
            level: arena[0].level,
            seq: self.next_seq(),
            arena_index: 0,
        });
        while let Some(entry) = queue.pop() {
            if let Some(u) = self.budget.interruption(self.started) {
                return BlockResult::Stopped(u);
            }
            let (level, cube) = {
                let ob = &arena[entry.arena_index];
                (ob.level as usize, ob.cube.clone())
            };
            // Already blocked by a stronger clause?
            if self.cube_is_blocked(&cube, level) {
                continue;
            }
            if level == 0 {
                unreachable!("level-0 obligations are resolved at creation");
            }
            match self.query_relative(&cube, level) {
                RelQuery::Stopped(u) => return BlockResult::Stopped(u),
                RelQuery::Pred((pred_state, pred_inputs)) => {
                    let full = Self::state_to_cube(&pred_state);
                    if self.cube_intersects_init(&full) {
                        // The predecessor is an initial state (any
                        // uninitialized latch value is allowed at
                        // reset): a genuine counterexample, at any
                        // obligation level.
                        return BlockResult::Cex(self.reconstruct_trace(
                            &arena,
                            entry.arena_index,
                            pred_state,
                            pred_inputs,
                        ));
                    }
                    // Widen the predecessor against the parent cube,
                    // then lift it through the SAT core.
                    self.pred_targets(&cube);
                    let pred_cube = self.ternary_generalize(&pred_state, &pred_inputs);
                    let pred_cube = self.lift_cube(pred_cube, &pred_inputs, Some(&cube), 0);
                    let pred = Obligation {
                        level: level as u32 - 1,
                        cube: pred_cube,
                        parent: Some(entry.arena_index),
                        inputs_to_parent: pred_inputs,
                        bad_inputs: Vec::new(),
                        bad_index: 0,
                    };
                    arena.push(pred);
                    let pi = arena.len() - 1;
                    // Re-enqueue both: the predecessor (one level down)
                    // and the original obligation.
                    queue.push(QueueEntry {
                        level: level as u32 - 1,
                        seq: self.next_seq(),
                        arena_index: pi,
                    });
                    queue.push(QueueEntry {
                        level: level as u32,
                        seq: self.next_seq(),
                        arena_index: entry.arena_index,
                    });
                }
                RelQuery::Blocked(core) => {
                    // Blocked: generalize further and store the clause.
                    let gen = match self.shrink(core, level) {
                        Ok(g) => g,
                        Err(u) => return BlockResult::Stopped(u),
                    };
                    // Push the clause as far forward as it stays
                    // relatively inductive. The loop re-checks the
                    // budget itself: each query is individually
                    // limited, but a long push across many levels
                    // must not outlive the deadline between queries.
                    let mut at = level;
                    while at < max_level {
                        if let Some(u) = self.budget.interruption(self.started) {
                            return BlockResult::Stopped(u);
                        }
                        match self.query_relative(&gen, at + 1) {
                            RelQuery::Blocked(_) => at += 1,
                            RelQuery::Pred(_) => break,
                            RelQuery::Stopped(u) => return BlockResult::Stopped(u),
                        }
                    }
                    self.add_blocked(gen, at);
                    // Re-enqueue at the next level to chase deeper cex.
                    if (at as u32) < max_level as u32 {
                        let ob = arena[entry.arena_index].clone();
                        arena.push(Obligation {
                            level: at as u32 + 1,
                            ..ob
                        });
                        queue.push(QueueEntry {
                            level: at as u32 + 1,
                            seq: self.next_seq(),
                            arena_index: arena.len() - 1,
                        });
                    }
                }
            }
        }
        BlockResult::Blocked
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Propagates clauses forward; returns the fixpoint level when two
    /// adjacent frames coincide (`frames[i]` emptied means
    /// `F_i = F_{i+1}`).
    fn propagate(&mut self, max_level: usize) -> Result<Option<usize>, Unknown> {
        for i in 1..max_level {
            let cubes = self.frames.get(i).cloned().unwrap_or_default();
            for cube in cubes {
                if let Some(u) = self.budget.interruption(self.started) {
                    return Err(u);
                }
                // The cube may have been pruned (subsumed) by an
                // earlier move in this very pass.
                if !self.frames[i].contains(&cube) {
                    continue;
                }
                match self.query_relative(&cube, i + 1) {
                    RelQuery::Blocked(_) => {
                        // Holds one frame further: storing it at i+1
                        // prunes the copy at i by subsumption.
                        self.add_blocked(cube, i + 1);
                    }
                    RelQuery::Pred(_) => {}
                    RelQuery::Stopped(u) => return Err(u),
                }
            }
            if self.frames.get(i).is_none_or(Vec::is_empty) {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// The fixpoint frame `F_level` as a Safe-verdict witness: every
    /// cube stored at levels `>= level` (the delta encoding's
    /// `F_level`), negated into a clause over latch variables — plus
    /// the static strengthening clauses, which were asserted unguarded
    /// in the solver and are therefore part of every frame the
    /// fixpoint argument ran under.
    fn export_invariant(&self, level: usize) -> crate::certify::Certificate {
        let mut clauses: Vec<LatchClause> = self
            .frames
            .iter()
            .skip(level)
            .flatten()
            .map(|cube| cube.iter().map(|&(i, v)| (i, !v)).collect())
            .collect();
        clauses.extend(self.inv.iter().cloned());
        crate::certify::Certificate::Clausal(crate::certify::ClausalInvariant { clauses })
    }

    /// The top-level PDR loop.
    pub(crate) fn solve(&mut self) -> CheckOutcome {
        let started = self.started;

        // Level 0: Init ∧ Bad?
        self.stats.sat_queries += 1;
        self.push_frame_tail(0);
        self.assumptions.push(self.bad_lit);
        if self.div.domain {
            self.fill_bad_domain();
        }
        match self.solve_prepared() {
            SolveResult::Sat => {
                let trace = Trace {
                    states: vec![self.model_state()],
                    inputs: vec![self.model_inputs()],
                    bad_index: self.fired_bad(),
                };
                return self.outcome(Verdict::Unsafe(trace), started);
            }
            SolveResult::Unknown(why) => {
                return self.outcome(Verdict::Unknown(why.into()), started)
            }
            SolveResult::Unsat => {}
        }

        let mut max_level: usize = 1;
        loop {
            if let Some(u) = self.budget.interruption(started) {
                return self.outcome(Verdict::Unknown(u), started);
            }
            if max_level as u32 > self.budget.max_depth {
                return self.outcome(Verdict::Unknown(Unknown::BoundReached), started);
            }
            self.stats.depth = max_level as u32;
            self.max_level = max_level;
            self.ensure_act(max_level);
            if let Some(u) = self.sync_shared() {
                return self.outcome(Verdict::Unknown(u), started);
            }

            // Find a bad state in F_max.
            self.stats.sat_queries += 1;
            self.push_frame_tail(max_level);
            self.assumptions.push(self.bad_lit);
            if self.div.domain {
                self.fill_bad_domain();
            }
            match self.solve_prepared() {
                SolveResult::Sat => {
                    let state = self.model_state();
                    let bad_inputs = self.model_inputs();
                    let bad_index = self.fired_bad();
                    let cube = Self::state_to_cube(&state);
                    if self.cube_intersects_init(&cube) {
                        // Bad state inside init was excluded at level 0
                        // unless it needs inputs; treat as cex directly.
                        let trace = Trace {
                            states: vec![state],
                            inputs: vec![bad_inputs],
                            bad_index,
                        };
                        return self.outcome(Verdict::Unsafe(trace), started);
                    }
                    self.bad_targets(bad_index);
                    let cube = self.ternary_generalize(&state, &bad_inputs);
                    let cube = self.lift_cube(cube, &bad_inputs, None, bad_index);
                    let root = Obligation {
                        level: max_level as u32,
                        cube,
                        parent: None,
                        inputs_to_parent: Vec::new(),
                        bad_inputs,
                        bad_index,
                    };
                    match self.block_obligations(root, max_level) {
                        BlockResult::Blocked => {}
                        BlockResult::Cex(trace) => {
                            return self.outcome(Verdict::Unsafe(trace), started);
                        }
                        BlockResult::Stopped(u) => {
                            return self.outcome(Verdict::Unknown(u), started);
                        }
                    }
                }
                SolveResult::Unsat => {
                    // Frame clear: extend and propagate.
                    max_level += 1;
                    self.max_level = max_level;
                    self.ensure_act(max_level);
                    match self.propagate(max_level) {
                        Ok(Some(level)) => {
                            let cert = self.export_invariant(level);
                            return self.outcome(Verdict::Safe, started).with_certificate(cert);
                        }
                        Ok(None) => {}
                        Err(u) => return self.outcome(Verdict::Unknown(u), started),
                    }
                }
                SolveResult::Unknown(why) => {
                    return self.outcome(Verdict::Unknown(why.into()), started);
                }
            }
        }
    }
}

impl Checker for Pdr {
    fn name(&self) -> &'static str {
        "abc-pdr"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        // Compile once, simplify once: every frame this run
        // instantiates inherits the preprocessed image.
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[])
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self.run(&blasted.sys, &blasted.template, &blasted.invariant.clauses);
        blasted.stamp(&mut out.stats);
        out
    }
}

impl Pdr {
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> CheckOutcome {
        let mut run = PdrRun::new(sys, tpl, inv, self.budget.clone());
        run.set_diversity(Diversity {
            domain: self.domains,
            chrono: self.chrono,
            ..Diversity::default()
        });
        if let Some(bus) = &self.bus {
            run.attach_bus(bus.clone());
        }
        run.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    #[test]
    fn proves_saturating_counter() {
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at, sv, inc);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        let out = Pdr::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn finds_bugs_with_replayable_traces() {
        for depth in [0u64, 1, 5, 17] {
            let ts = crate::bmc::tests::counter_ts(depth, 8);
            let out = Pdr::default().check(&ts);
            match out.outcome {
                Verdict::Unsafe(trace) => {
                    assert_eq!(trace.length() as u64, depth, "depth {depth}");
                    let sys = aig::blast_system(&ts);
                    assert!(trace.replays_on(&sys), "trace replays, depth {depth}");
                }
                other => panic!("expected Unsafe at depth {depth}, got {other:?}"),
            }
        }
    }

    #[test]
    fn proves_trap_design_where_kind_fails() {
        // Same design as kind::tests::trap_ts: PDR finds the inductive
        // invariant { a = 0 } immediately.
        let mut ts = TransitionSystem::new("trap");
        let jump = ts.add_input("jump", Sort::BOOL);
        let a = ts.add_state("a", Sort::BOOL);
        let c = ts.add_state("c", Sort::Bv(2));
        let (jv, av, cv) = {
            let p = ts.pool_mut();
            (p.var(jump), p.var(a), p.var(c))
        };
        let p = ts.pool_mut();
        let two = p.constv(2, 2);
        let three = p.constv(2, 3);
        let one = p.constv(2, 1);
        let zero2 = p.constv(2, 0);
        let zero1 = p.constv(1, 0);
        let at2 = p.eq(cv, two);
        let inc = p.add(cv, one);
        let cyc = p.ite(at2, zero2, inc);
        let jumped = p.ite(jv, three, cyc);
        let c_next = p.ite(av, jumped, zero2);
        let at3 = p.eq(cv, three);
        let bad = p.and(av, at3);
        ts.set_init(a, zero1);
        ts.set_init(c, zero2);
        ts.set_next(a, av);
        ts.set_next(c, c_next);
        ts.add_bad(bad, "trap");
        let out = Pdr::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
    }

    /// The tentpole invariant: one PDR run constructs exactly one
    /// `satb::Solver` (the per-thread construction counter is the same
    /// probe style as PR 3's single-blast checks), and deep runs
    /// recycle their per-query activation variables.
    #[test]
    fn single_solver_per_run_with_recycling() {
        let ts = crate::bmc::tests::counter_ts(17, 8);
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let before = satb::solver_count();
        let out = Pdr::default().run(&sys, &tpl, &[]);
        assert_eq!(
            satb::solver_count() - before,
            1,
            "single-solver PDR must build exactly one solver per run"
        );
        assert!(out.outcome.is_unsafe());
        assert!(
            out.stats.act_recycled > 0,
            "deep runs must reuse released activation vars: {:?}",
            out.stats
        );
    }

    /// Ternary widening must fire when the design carries state the
    /// bad cone does not depend on — the latches of a shadow register
    /// are X-able in every obligation — and never change the verdict.
    #[test]
    fn ternary_generalization_widens_obligations() {
        let mut ts = TransitionSystem::new("counter-with-shadow");
        let data = ts.add_input("data", Sort::Bv(8));
        let c = ts.add_state("count", Sort::Bv(8));
        let shadow = ts.add_state("shadow", Sort::Bv(8));
        let (dv, cv, sv) = {
            let p = ts.pool_mut();
            (p.var(data), p.var(c), p.var(shadow))
        };
        let p = ts.pool_mut();
        let one = p.constv(8, 1);
        let inc = p.add(cv, one);
        let zero = p.constv(8, 0);
        let nine = p.constv(8, 9);
        let bad = p.eq(cv, nine);
        // The shadow register free-runs on the input and never feeds
        // the property.
        let s_next = p.add(sv, dv);
        ts.set_init(c, zero);
        ts.set_init(shadow, zero);
        ts.set_next(c, inc);
        ts.set_next(shadow, s_next);
        ts.add_bad(bad, "count is 9");
        let out = Pdr::default().check(&ts);
        match &out.outcome {
            Verdict::Unsafe(trace) => {
                assert_eq!(trace.length(), 9);
                let sys = aig::blast_system(&ts);
                assert!(trace.replays_on(&sys), "widened-cube trace must replay");
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
        assert!(
            out.stats.ternary_drops > 0,
            "shadow latches must be dropped from obligations: {:?}",
            out.stats
        );
    }

    /// Every cube stored in the frames at the end of a run must be (a)
    /// disjoint from the initial states and (b) inductive relative to
    /// the frame below it — checked against an independent solver built
    /// directly from the template.
    #[test]
    fn stored_cubes_are_relative_inductive_and_init_disjoint() {
        for ts in [
            crate::kind::tests::trap_ts(),
            crate::bmc::tests::counter_ts(9, 8),
        ] {
            let sys = aig::blast_system(&ts);
            let tpl = TransitionTemplate::compile(&sys);
            let mut run = PdrRun::new(
                &sys,
                &tpl,
                &[],
                Budget {
                    timeout: None,
                    ..Budget::default()
                },
            );
            let _ = run.solve();
            let frames = run.frames.clone();
            for (level, cubes) in frames.iter().enumerate().skip(1) {
                for cube in cubes {
                    assert!(
                        !run.cube_intersects_init(cube),
                        "stored cube intersects init: {cube:?}"
                    );
                    // Independent relative-induction check:
                    // F_{level-1} ∧ ¬cube ∧ T ∧ cube' must be UNSAT.
                    let mut s = Solver::new();
                    let vars = tpl.instantiate(&mut s, Part::A, 0);
                    if level == 1 {
                        vars.assert_init(&sys, &mut s);
                    }
                    for cs in frames.iter().skip(level - 1).filter(|_| level > 1) {
                        for c in cs {
                            let cl: Vec<Lit> = c
                                .iter()
                                .map(|&(i, v)| {
                                    if v {
                                        !vars.latch_cur[i]
                                    } else {
                                        vars.latch_cur[i]
                                    }
                                })
                                .collect();
                            s.add_clause(&cl);
                        }
                    }
                    let not_cube: Vec<Lit> = cube
                        .iter()
                        .map(|&(i, v)| {
                            if v {
                                !vars.latch_cur[i]
                            } else {
                                vars.latch_cur[i]
                            }
                        })
                        .collect();
                    s.add_clause(&not_cube);
                    let assumptions: Vec<Lit> = cube
                        .iter()
                        .map(|&(i, v)| {
                            if v {
                                vars.latch_next[i]
                            } else {
                                !vars.latch_next[i]
                            }
                        })
                        .collect();
                    assert_eq!(
                        s.solve_with(&assumptions),
                        SolveResult::Unsat,
                        "cube at level {level} not relatively inductive: {cube:?}"
                    );
                }
            }
        }
    }

    /// Verdict equivalence with the per-frame baseline on random
    /// sequential AIGs (the refactor must not change any answer).
    #[test]
    fn matches_per_frame_baseline_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x9D12);
        for round in 0..25 {
            let sys = random_system(&mut rng);
            let tpl = TransitionTemplate::compile(&sys);
            let budget = Budget {
                timeout: None,
                max_depth: 64,
                ..Budget::default()
            };
            let single = Pdr::new(budget.clone()).run(&sys, &tpl, &[]);
            let frames = crate::pdr_baseline::PerFramePdr::new(budget).run(&sys, &tpl, &[]);
            match (&single.outcome, &frames.outcome) {
                (Verdict::Safe, Verdict::Safe) => {}
                (Verdict::Unsafe(a), Verdict::Unsafe(b)) => {
                    assert!(a.replays_on(&sys), "round {round}: single-solver trace");
                    assert!(b.replays_on(&sys), "round {round}: baseline trace");
                }
                (Verdict::Unknown(_), Verdict::Unknown(_)) => {}
                other => panic!("round {round}: verdicts diverge: {other:?}"),
            }
        }
    }

    /// The shared random sequential netlist (`aig::testutil`, reached
    /// through the `testutil` dev-dependency feature).
    fn random_system(rng: &mut rand::rngs::StdRng) -> AigSystem {
        aig::testutil::random_system(rng, &aig::testutil::RandomSystemConfig::default())
    }

    /// Obligation pop order: lowest level first; among equal levels,
    /// the most recently enqueued obligation (reverse-chronological —
    /// the ROADMAP follow-up fixed in this PR).
    #[test]
    fn obligation_queue_pops_newest_among_equal_levels() {
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        for (level, seq) in [(2u32, 1u64), (2, 2), (1, 3), (1, 4), (3, 5)] {
            heap.push(QueueEntry {
                level,
                seq,
                arena_index: seq as usize,
            });
        }
        let order: Vec<(u32, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.level, e.seq))
            .collect();
        assert_eq!(order, vec![(1, 4), (1, 3), (2, 2), (2, 1), (3, 5)]);
    }

    #[test]
    fn mutex_style_protocol() {
        // Two processes alternate via a turn bit; both-critical is bad.
        let mut ts = TransitionSystem::new("mutex");
        let req0 = ts.add_input("req0", Sort::BOOL);
        let req1 = ts.add_input("req1", Sort::BOOL);
        let c0 = ts.add_state("crit0", Sort::BOOL);
        let c1 = ts.add_state("crit1", Sort::BOOL);
        let turn = ts.add_state("turn", Sort::BOOL);
        let (r0, r1, c0v, c1v, tv) = {
            let p = ts.pool_mut();
            (p.var(req0), p.var(req1), p.var(c0), p.var(c1), p.var(turn))
        };
        let p = ts.pool_mut();
        // Enter critical only when requested, it is your turn, and the
        // other is out; leave when request drops.
        let nt = p.not(tv);
        let other0_out = p.not(c1v);
        let enter0 = p.and(r0, nt);
        let enter0 = p.and(enter0, other0_out);
        let c0_next = p.ite(c0v, r0, enter0);
        let other1_out = p.not(c0v);
        let enter1 = p.and(r1, tv);
        let enter1 = p.and(enter1, other1_out);
        let c1_next = p.ite(c1v, r1, enter1);
        let t_next = p.not(tv);
        let both = p.and(c0v, c1v);
        let f = p.constv(1, 0);
        ts.set_init(c0, f);
        ts.set_init(c1, f);
        ts.set_init(turn, f);
        ts.set_next(c0, c0_next);
        ts.set_next(c1, c1_next);
        ts.set_next(turn, t_next);
        ts.add_bad(both, "mutual exclusion violated");
        let out = Pdr::default().check(&ts);
        // This protocol is actually unsafe (no handshake): PDR must
        // find a real, replayable counterexample — or prove it safe if
        // the alternation suffices. Either way the verdict must be
        // definite and traces must replay.
        match out.outcome {
            Verdict::Safe => {}
            Verdict::Unsafe(trace) => {
                let sys = aig::blast_system(&ts);
                assert!(trace.replays_on(&sys), "cex must replay");
            }
            other => panic!("expected a definite verdict, got {other:?}"),
        }
    }

    /// Input-based SAT-core lifting must drop cone-unrelated latches
    /// even with ternary widening disabled (the diversified profile of
    /// worker 2): the shadow register never feeds the property, so the
    /// lift query's conflict cannot involve its bits and the failed
    /// core sheds them.
    #[test]
    fn lifting_drops_cone_unrelated_latches() {
        let mut ts = TransitionSystem::new("counter-with-shadow");
        let data = ts.add_input("data", Sort::Bv(8));
        let c = ts.add_state("count", Sort::Bv(8));
        let shadow = ts.add_state("shadow", Sort::Bv(8));
        let (dv, cv, sv) = {
            let p = ts.pool_mut();
            (p.var(data), p.var(c), p.var(shadow))
        };
        let p = ts.pool_mut();
        let one = p.constv(8, 1);
        let inc = p.add(cv, one);
        let zero = p.constv(8, 0);
        let nine = p.constv(8, 9);
        let bad = p.eq(cv, nine);
        let s_next = p.add(sv, dv);
        ts.set_init(c, zero);
        ts.set_init(shadow, zero);
        ts.set_next(c, inc);
        ts.set_next(shadow, s_next);
        ts.add_bad(bad, "count is 9");
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let mut run = PdrRun::new(
            &sys,
            &tpl,
            &[],
            Budget {
                timeout: None,
                ..Budget::default()
            },
        );
        run.set_diversity(Diversity {
            ternary: false,
            ..Diversity::default()
        });
        let out = run.solve();
        match &out.outcome {
            Verdict::Unsafe(trace) => {
                assert_eq!(trace.length(), 9);
                assert!(trace.replays_on(&sys), "lifted-cube trace must replay");
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
        assert_eq!(out.stats.ternary_drops, 0, "ternary is off in this profile");
        assert!(
            out.stats.lifted_lits > 0,
            "the SAT core must shed shadow latches: {:?}",
            out.stats
        );
    }

    /// Every diversified worker profile is a complete, sound PDR: all
    /// four profiles agree with the default on random sequential AIGs,
    /// and their traces replay.
    #[test]
    fn diversity_profiles_agree_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let budget = Budget {
            timeout: None,
            max_depth: 64,
            ..Budget::default()
        };
        let mut rng = StdRng::seed_from_u64(0xD1F7);
        for round in 0..10 {
            let sys = random_system(&mut rng);
            let tpl = TransitionTemplate::compile(&sys);
            let base = Pdr::new(budget.clone()).run(&sys, &tpl, &[]);
            for w in 0..4usize {
                let mut run = PdrRun::new(&sys, &tpl, &[], budget.clone());
                run.set_diversity(Diversity::for_worker(w));
                let out = run.solve();
                match (&base.outcome, &out.outcome) {
                    (Verdict::Safe, Verdict::Safe) => {}
                    (Verdict::Unsafe(_), Verdict::Unsafe(t)) => {
                        assert!(t.replays_on(&sys), "round {round} profile {w}: replay");
                    }
                    (Verdict::Unknown(_), Verdict::Unknown(_)) => {}
                    other => panic!("round {round} profile {w}: diverge: {other:?}"),
                }
            }
        }
    }

    /// Foreign-cube import soundness: a second run syncing another
    /// worker's published cubes re-verifies each one locally, so every
    /// cube it ends up storing — local or imported — is init-disjoint
    /// and relatively inductive against an independent solver, exactly
    /// as for a solo run.
    #[test]
    fn imported_foreign_cubes_are_reverified_locally() {
        let ts = crate::bmc::tests::counter_ts(9, 8);
        let sys = aig::blast_system(&ts);
        let tpl = TransitionTemplate::compile(&sys);
        let budget = Budget {
            timeout: None,
            ..Budget::default()
        };
        let store = Arc::new(crate::parallel::SharedFrames::new());
        // Worker 0 fills the store.
        let mut run_a = PdrRun::new(&sys, &tpl, &[], budget.clone());
        run_a.attach_shared(Arc::clone(&store), 0);
        let out_a = run_a.solve();
        assert!(out_a.outcome.is_unsafe());
        assert!(
            out_a.stats.lemmas_exported > 0,
            "worker 0 must publish cubes: {:?}",
            out_a.stats
        );
        // Worker 1 (a different generalization profile) syncs them in.
        let mut run_b = PdrRun::new(&sys, &tpl, &[], budget);
        run_b.set_diversity(Diversity::for_worker(1));
        run_b.attach_shared(Arc::clone(&store), 1);
        let out_b = run_b.solve();
        assert!(out_b.outcome.is_unsafe());
        assert!(
            out_b.stats.lemmas_imported > 0 && out_b.stats.sync_rounds > 0,
            "worker 1 must import foreign cubes: {:?}",
            out_b.stats
        );
        // The solo-run soundness check, verbatim, over the importing
        // run's final frames.
        let frames = run_b.frames.clone();
        for (level, cubes) in frames.iter().enumerate().skip(1) {
            for cube in cubes {
                assert!(
                    !run_b.cube_intersects_init(cube),
                    "stored cube intersects init: {cube:?}"
                );
                let mut s = Solver::new();
                let vars = tpl.instantiate(&mut s, Part::A, 0);
                if level == 1 {
                    vars.assert_init(&sys, &mut s);
                }
                for cs in frames.iter().skip(level - 1).filter(|_| level > 1) {
                    for c in cs {
                        let cl: Vec<Lit> = c
                            .iter()
                            .map(|&(i, v)| {
                                if v {
                                    !vars.latch_cur[i]
                                } else {
                                    vars.latch_cur[i]
                                }
                            })
                            .collect();
                        s.add_clause(&cl);
                    }
                }
                let not_cube: Vec<Lit> = cube
                    .iter()
                    .map(|&(i, v)| {
                        if v {
                            !vars.latch_cur[i]
                        } else {
                            vars.latch_cur[i]
                        }
                    })
                    .collect();
                s.add_clause(&not_cube);
                let assumptions: Vec<Lit> = cube
                    .iter()
                    .map(|&(i, v)| {
                        if v {
                            vars.latch_next[i]
                        } else {
                            !vars.latch_next[i]
                        }
                    })
                    .collect();
                assert_eq!(
                    s.solve_with(&assumptions),
                    SolveResult::Unsat,
                    "imported/stored cube at level {level} not relatively inductive: {cube:?}"
                );
            }
        }
    }
}
