//! Bit-level k-induction (Sheeran–Singh–Stålmarck 2000).
//!
//! The "ABC-kind" configuration of the paper's Figure 3. Two
//! incremental solvers run in lock step: a *base* chain (BMC from the
//! initial states) refutes the property, while a *step* chain (free
//! initial state, property assumed for `k` frames, violated at frame
//! `k`, with simple-path constraints) proves it.

use crate::bmc::FrameChain;
use crate::certify::LatchClause;
use crate::parallel::{LemmaGate, LemmaReceiver};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Unknown, Verdict};
use aig::{AigSystem, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::SolveResult;
use std::time::Instant;

/// Bit-level k-induction engine.
///
/// Completeness: with `simple_path` enabled the method is complete on
/// finite-state systems (the recurrence diameter bounds k), but the
/// required k can be astronomically large — exactly the behaviour the
/// paper reports for the FIFO/RCU/BufAl benchmarks, where properties
/// are not k-inductive for any feasible k.
#[derive(Clone, Debug)]
pub struct KInduction {
    /// Resource limits.
    pub budget: Budget,
    /// Add pairwise state-distinctness (simple path) constraints.
    pub simple_path: bool,
    /// Broadcast lemmas from the portfolio's PDR seat, admitted through
    /// a [`LemmaGate`] before strengthening the step premise.
    pub lemmas: Option<LemmaReceiver>,
}

impl Default for KInduction {
    fn default() -> KInduction {
        KInduction {
            budget: Budget::default(),
            simple_path: true,
            lemmas: None,
        }
    }
}

impl KInduction {
    /// Creates a k-induction engine with the given budget.
    pub fn new(budget: Budget) -> KInduction {
        KInduction {
            budget,
            ..KInduction::default()
        }
    }

    /// Subscribes the engine to a cross-seat lemma broadcast.
    #[must_use]
    pub fn with_lemmas(mut self, lemmas: LemmaReceiver) -> KInduction {
        self.lemmas = Some(lemmas);
        self
    }
}

impl KInduction {
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();

        // One blast, one template: the base and step chains instantiate
        // the same compiled clause image into their own solvers. The
        // certified static invariant rides on every frame of both: it
        // strengthens the step premise (fewer spurious
        // counterexamples-to-induction) and is mandatory on the
        // free-state step chain when the template is invariant-refined.
        let mut base = FrameChain::new(sys, tpl, inv, true);
        let mut step = FrameChain::new(sys, tpl, inv, false);
        // Simple-path constraints are incremental: iteration k adds
        // only the new pairs (i, k), in one activation group per
        // iteration (halved xor encoding, difference variables from
        // the scratch pool), and every step solve assumes the live
        // guards. Scoping the constraints into releasable groups keeps
        // them removable — the pool recycles the difference variables
        // of any group that is released (see `ScratchPool`) — while a
        // cumulative run keeps all groups live, so nothing is
        // re-encoded and learned clauses persist across iterations.
        let mut pool = crate::bmc::ScratchPool::default();
        let mut sp_acts: Vec<satb::Lit> = Vec::new();
        // Step-solve decision domain, grown monotonically with the
        // chain: each new frame contributes its base and cones (the
        // chain binding makes earlier frames' cones part of the fanin
        // closure — see `FrameChain::extend_domain`), and each
        // simple-path group its guard and difference variables.
        let mut step_dom = satb::Domain::new();
        let mut dom_frames = 0usize;
        // Broadcast lemmas from the PDR seat strengthen the step
        // premise, but only after passing the admission gate: a frame
        // clause that is not genuinely inductive relative to what we
        // already assert would be unsound on the free-state step chain.
        let mut gate = self.lemmas.as_ref().map(|_| LemmaGate::new(sys, tpl, inv));

        for k in 0..=self.budget.max_depth {
            if let Some(u) = self.budget.interruption(started) {
                stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            stats.depth = k;

            if let (Some(rx), Some(gate)) = (&self.lemmas, &mut gate) {
                let pending = rx.drain();
                if !pending.is_empty() {
                    stats.sync_rounds += 1;
                }
                for clause in pending {
                    if gate.admit(&clause, self.budget.sat_limits(started)) {
                        base.add_lemma(&clause);
                        step.add_lemma(&clause);
                        stats.lemmas_imported += 1;
                    }
                }
            }

            // Base case: counterexample of length exactly k?
            let bad_base = base.any_bad(k as usize);
            stats.sat_queries += 1;
            match base
                .solver
                .solve_limited(&[bad_base], self.budget.sat_limits(started))
            {
                SolveResult::Sat => {
                    let bi = base.fired_bad(k as usize);
                    let trace = base.extract_trace(k as usize, bi);
                    stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                    return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                }
                SolveResult::Unsat => {
                    base.solver.add_clause(&[!bad_base]);
                }
                SolveResult::Unknown(why) => {
                    stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
            }

            // A base-case solve that exhausted the budget must not run
            // the (often much harder) step solve before noticing.
            if let Some(u) = self.budget.interruption(started) {
                stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }

            // Inductive step at k: frames 0..=k from a free state, with
            // the property holding on frames 0..k-1 (pinned by the !bad
            // units added in earlier iterations) and violated at k.
            // Only the pairs involving the new frame are encoded; the
            // earlier iterations' groups are still live and assumed.
            if self.simple_path && k >= 1 {
                let act = step.solver.new_activation();
                let mut used: Vec<satb::Var> = Vec::new();
                for i in 0..k as usize {
                    step.assert_distinct_scoped(i, k as usize, act, &mut pool, &mut used);
                }
                step_dom.insert(act.var());
                step_dom.extend(used.iter().copied());
                sp_acts.push(act);
            }
            let bad_step = step.any_bad(k as usize);
            while dom_frames <= k as usize {
                step.extend_domain(dom_frames, &mut step_dom);
                dom_frames += 1;
            }
            let mut assumptions = vec![bad_step];
            assumptions.extend_from_slice(&sp_acts);
            stats.sat_queries += 1;
            match step.solver.solve_with_domain(
                &assumptions,
                self.budget.sat_limits(started),
                &step_dom,
            ) {
                SolveResult::Unsat => {
                    stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                    // The base chain verified depths 0..=k and the
                    // step premise just proved k-inductiveness: the
                    // witness is the (k, simple-path) claim itself,
                    // plus the strengthening clauses the step premise
                    // assumed — the static invariant and every admitted
                    // broadcast lemma — re-checked from scratch by
                    // `certify`.
                    let mut invariant = inv.to_vec();
                    if let Some(gate) = &gate {
                        invariant.extend_from_slice(gate.accepted());
                    }
                    let cert = crate::certify::Certificate::KInductive {
                        k,
                        simple_path: self.simple_path,
                        invariant,
                    };
                    return CheckOutcome::finish(Verdict::Safe, stats, started)
                        .with_certificate(cert);
                }
                SolveResult::Sat => {
                    // Not k-inductive: pin !bad at k and deepen.
                    step.solver.add_clause(&[!bad_step]);
                }
                SolveResult::Unknown(why) => {
                    stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
                    return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
                }
            }
        }
        stats.set_solver_stats([base.solver.stats(), step.solver.stats()]);
        CheckOutcome::finish(Verdict::Unknown(Unknown::BoundReached), stats, started)
    }
}

impl Checker for KInduction {
    fn name(&self) -> &'static str {
        "abc-kind"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        // Compile once, simplify once: every frame this run
        // instantiates inherits the preprocessed image.
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[])
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self.run(&blasted.sys, &blasted.template, &blasted.invariant.clauses);
        blasted.stamp(&mut out.stats);
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rtlir::Sort;

    /// Saturating counter: increments until it reaches `limit`, then
    /// holds. `count <= limit` is 1-inductive.
    fn saturating_counter(limit: u64) -> TransitionSystem {
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, limit);
        let one = ts.pool_mut().constv(8, 1);
        let at_lim = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at_lim, sv, inc);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "count exceeds limit");
        ts
    }

    #[test]
    fn proves_one_inductive_property() {
        let ts = saturating_counter(10);
        let out = KInduction::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
        assert!(out.stats.depth <= 2, "should be k-inductive for tiny k");
    }

    #[test]
    fn finds_base_case_bug() {
        let ts = crate::bmc::tests::counter_ts(6, 8);
        let out = KInduction::default().check(&ts);
        match out.outcome {
            Verdict::Unsafe(trace) => assert_eq!(trace.length(), 6),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    /// A design with an *unreachable* loop that can exit into the bad
    /// region: `a` is frozen at 0, but if it were 1, `c` would cycle
    /// 0→1→2→0 forever and could jump to 3 (bad) on an input pulse.
    /// Plain k-induction never converges (the unreachable loop yields
    /// counterexamples-to-induction of every length); the simple-path
    /// constraint bounds paths by the state count and settles it.
    pub(crate) fn trap_ts() -> TransitionSystem {
        let mut ts = TransitionSystem::new("trap");
        let jump = ts.add_input("jump", Sort::BOOL);
        let a = ts.add_state("a", Sort::BOOL);
        let c = ts.add_state("c", Sort::Bv(2));
        let (jv, av, cv) = {
            let p = ts.pool_mut();
            (p.var(jump), p.var(a), p.var(c))
        };
        let p = ts.pool_mut();
        let two = p.constv(2, 2);
        let three = p.constv(2, 3);
        let one = p.constv(2, 1);
        let zero2 = p.constv(2, 0);
        let zero1 = p.constv(1, 0);
        let at2 = p.eq(cv, two);
        let inc = p.add(cv, one);
        let cyc = p.ite(at2, zero2, inc);
        let jumped = p.ite(jv, three, cyc);
        let c_next = p.ite(av, jumped, zero2);
        let at3 = p.eq(cv, three);
        let bad = p.and(av, at3);
        ts.set_init(a, zero1);
        ts.set_init(c, zero2);
        ts.set_next(a, av); // frozen
        ts.set_next(c, c_next);
        ts.add_bad(bad, "trap exit reached");
        ts
    }

    #[test]
    fn simple_path_makes_trap_provable() {
        let ts = trap_ts();
        let out = KInduction::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
        assert!(
            out.stats.depth >= 2,
            "not 1-inductive: k = {}",
            out.stats.depth
        );

        // Without simple-path constraints the unreachable loop defeats
        // induction at every k: the engine must hit the bound instead.
        let out2 = KInduction {
            budget: Budget {
                timeout: None,
                max_depth: 25,
                ..Budget::default()
            },
            simple_path: false,
            ..KInduction::default()
        }
        .check(&ts);
        assert_eq!(out2.outcome, Verdict::Unknown(Unknown::BoundReached));
    }

    /// The ROADMAP follow-up landed in this PR: per-iteration
    /// simple-path groups recycle both the activation variable and the
    /// xor difference variables, so re-encoding the same pairs twice
    /// allocates nothing new.
    #[test]
    fn scoped_simple_path_recycles_vars() {
        let ts = trap_ts();
        let sys = aig::blast_system(&ts);
        let tpl = aig::TransitionTemplate::compile(&sys).preprocess().template;
        let mut step = crate::bmc::FrameChain::new(&sys, &tpl, &[], false);
        let mut pool = crate::bmc::ScratchPool::default();
        let _ = step.any_bad(3);
        let mut vars_after: Vec<usize> = Vec::new();
        for round in 0..3 {
            let act = step.solver.new_activation();
            let mut used = Vec::new();
            for j in 1..=3usize {
                for i in 0..j {
                    step.assert_distinct_scoped(i, j, act, &mut pool, &mut used);
                }
            }
            let bad = step.any_bad(3);
            let _ = step.solver.solve_with(&[bad, act]);
            assert!(
                step.solver.release_activation(act),
                "round {round}: release must succeed"
            );
            pool.recycle(used);
            vars_after.push(step.solver.num_vars());
        }
        assert_eq!(vars_after[0], vars_after[1], "no growth on re-encode");
        assert_eq!(vars_after[1], vars_after[2]);
    }

    /// Incremental simple-path encoding: iteration k adds exactly the
    /// new pairs (i, k) — one activation guard plus `k · latches`
    /// difference variables — never re-encoding earlier pairs.
    #[test]
    fn simple_path_groups_grow_incrementally() {
        let ts = trap_ts();
        let sys = aig::blast_system(&ts);
        let tpl = aig::TransitionTemplate::compile(&sys).preprocess().template;
        let mut step = crate::bmc::FrameChain::new(&sys, &tpl, &[], false);
        let mut pool = crate::bmc::ScratchPool::default();
        let nl = sys.latches.len();
        for k in 1..=4usize {
            let _ = step.any_bad(k);
            let before = step.solver.num_vars();
            let act = step.solver.new_activation();
            let mut used = Vec::new();
            for i in 0..k {
                step.assert_distinct_scoped(i, k, act, &mut pool, &mut used);
            }
            assert_eq!(
                step.solver.num_vars() - before,
                1 + k * nl,
                "iteration {k}: one guard plus the new pairs' diff vars"
            );
        }
    }

    #[test]
    fn input_gated_counter_is_safe() {
        // Counter only increments when enabled, saturates at 12.
        let mut ts = TransitionSystem::new("gated");
        let en = ts.add_input("en", Sort::BOOL);
        let s = ts.add_state("c", Sort::Bv(8));
        let (env_, sv) = {
            let p = ts.pool_mut();
            (p.var(en), p.var(s))
        };
        let twelve = ts.pool_mut().constv(8, 12);
        let one = ts.pool_mut().constv(8, 1);
        let zero = ts.pool_mut().constv(8, 0);
        let lt = ts.pool_mut().ult(sv, twelve);
        let inc = ts.pool_mut().add(sv, one);
        let can = ts.pool_mut().and(env_, lt);
        let next = ts.pool_mut().ite(can, inc, sv);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, twelve);
        ts.add_bad(bad, "c > 12");
        let out = KInduction::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
    }
}
