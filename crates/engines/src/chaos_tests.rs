//! Fault-injection hardening: property tests driving every engine with
//! `satb`'s deterministic chaos hook (`Limits::chaos`), which cancels
//! the solver mid-solve after a seeded, pseudo-random number of
//! conflicts.
//!
//! The properties (ISSUE 6, satellite 3):
//!
//! 1. An engine whose solver is cancelled from under it returns a clean
//!    [`Unknown::Cancelled`] — never a definite verdict it did not
//!    earn, never a panic — with its stats intact.
//! 2. A clean re-run of the same engine on the same system (no chaos)
//!    produces a definite verdict that passes the independent
//!    certificate check, i.e. the injected fault left no residue that
//!    could corrupt a later answer.
//!
//! Runs finishing under the injection threshold complete normally, so
//! chaotic runs must be allowed to answer — but any answer they give
//! must certify just like a calm one.

use crate::certify::certify;
use crate::result::{Budget, CheckOutcome, Unknown, Verdict};
use aig::{AigSystem, TransitionTemplate};
use proptest::prelude::*;
use satb::Chaos;

/// All five bit-level engines on one (system, template) pair.
fn run_all(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    budget: &Budget,
) -> Vec<(&'static str, CheckOutcome)> {
    vec![
        (
            "bmc",
            crate::bmc::Bmc::new(budget.clone()).run(sys, tpl, &[]),
        ),
        (
            "k-induction",
            crate::kind::KInduction::new(budget.clone()).run(sys, tpl, &[]),
        ),
        (
            "interpolation",
            crate::itp::Interpolation::new(budget.clone()).run(sys, tpl, &[]),
        ),
        (
            "pdr",
            crate::pdr::Pdr::new(budget.clone()).run(sys, tpl, &[]),
        ),
        (
            "pdr-frames",
            crate::pdr_baseline::PerFramePdr::new(budget.clone()).run(sys, tpl, &[]),
        ),
    ]
}

fn random_system(seed: u64) -> AigSystem {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    aig::testutil::random_system(&mut rng, &aig::testutil::RandomSystemConfig::default())
}

fn bounded(max_depth: u32) -> Budget {
    Budget {
        timeout: None,
        max_depth,
        ..Budget::default()
    }
}

proptest! {
    /// Chaos mid-solve: every engine survives the injected fault and
    /// returns either `Unknown(Cancelled)` (the injection fired) or a
    /// definite, certificate-checked verdict (the run beat the
    /// threshold). Nothing else — no panic, no unearned answer.
    #[test]
    fn engines_survive_injected_faults(seed in 0u64..48, chaos_seed in 0u64..4) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);
        // An aggressive period so most non-trivial runs get hit.
        let chaotic = bounded(24).with_chaos(Chaos { seed: chaos_seed, period: 3 });
        for (name, out) in run_all(&sys, &tpl, &chaotic) {
            match &out.outcome {
                Verdict::Unknown(Unknown::Cancelled) => {
                    // Interrupted: the engine must still report its
                    // work (finish() always stamps wall time).
                    prop_assert!(
                        out.stats.time > std::time::Duration::ZERO,
                        "{name}: interrupted run lost its stats"
                    );
                }
                Verdict::Unknown(_) => {} // bound reached before injection
                Verdict::Safe | Verdict::Unsafe(_) => {
                    // Finished under the threshold: the answer must be
                    // as trustworthy as a calm run's.
                    let rep = certify(&sys, &out);
                    prop_assert!(
                        rep.ok,
                        "{name}: chaotic definite verdict failed its certificate: {:?}",
                        rep.failure
                    );
                }
            }
        }
    }

    /// Retry after chaos: a clean re-run on a fresh engine converges to
    /// a definite verdict whose certificate checks, proving the
    /// injected fault cannot poison a subsequent attempt.
    #[test]
    fn clean_rerun_after_chaos_certifies(seed in 0u64..24) {
        let sys = random_system(seed);
        let tpl = TransitionTemplate::compile(&sys);
        let chaotic = bounded(24).with_chaos(Chaos { seed, period: 2 });
        let _ = run_all(&sys, &tpl, &chaotic); // inject faults; outcome free-form
        for (name, out) in run_all(&sys, &tpl, &bounded(64)) {
            if matches!(out.outcome, Verdict::Unknown(_)) {
                continue; // genuinely out of depth budget on this system
            }
            let rep = certify(&sys, &out);
            prop_assert!(
                rep.ok,
                "{name}: post-chaos verdict failed its certificate: {:?}",
                rep.failure
            );
        }
    }
}

/// The portfolio front door honours `Budget::chaos` too: seats race
/// with fault injection enabled and the dispatcher still returns a
/// clean (possibly `Unknown`) verdict.
#[test]
fn portfolio_survives_chaotic_budget() {
    let ts = crate::bmc::tests::counter_ts(3, 8);
    let budget = Budget {
        timeout: None,
        max_depth: 64,
        ..Budget::default()
    }
    .with_chaos(Chaos { seed: 7, period: 2 });
    let p = crate::portfolio::Portfolio::with_default_engines(budget);
    let report = p.check_detailed(&ts);
    match &report.verdict {
        Verdict::Unsafe(_) => assert!(report.certified, "witnessed bug must certify"),
        Verdict::Safe => panic!("counter_ts(3, 8) is unsafe"),
        Verdict::Unknown(_) => {} // every seat got hit — acceptable
    }
    assert!(!report.disagreement);
}
