//! Interpolation-based model checking (McMillan, CAV 2003).
//!
//! The "ABC-interpolation" configuration of the paper's Figure 4.
//! Iteratively over-approximates the reachable states: for the current
//! over-approximation `R` and bound `k`, the formula
//!
//! ```text
//!   A = R(s0) ∧ T(s0,s1)          B = T(s1,s2) … T(sk-1,sk) ∧ ⋁ Bad(si)
//! ```
//!
//! is refuted; the Craig interpolant over the frame-1 state variables
//! is an over-approximate image of `R` that still cannot reach a bad
//! state within `k-1` steps. When the accumulated `R` stops growing,
//! the property is proved; when `A ∧ B` becomes satisfiable for the
//! *initial* `R`, a real counterexample of length ≤ `k` exists.

use crate::certify::{clause_on, LatchClause};
use crate::parallel::{LemmaGate, LemmaReceiver};
use crate::result::{Blasted, Budget, CheckOutcome, Checker, EngineStats, Trace, Unknown, Verdict};
use aig::{Aig, AigLit, AigSystem, FrameEncoder, FrameVars, TransitionTemplate};
use rtlir::TransitionSystem;
use satb::{interp::ItpNode, Lit, Part, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;

/// Interpolation-based unbounded model checker.
#[derive(Clone, Debug, Default)]
pub struct Interpolation {
    /// Resource limits (`max_depth` bounds the unrolling length `k`).
    pub budget: Budget,
    /// Broadcast lemmas from the portfolio's PDR seat, admitted through
    /// a [`LemmaGate`] before strengthening the A- and B-side frames.
    pub lemmas: Option<LemmaReceiver>,
}

impl Interpolation {
    /// Creates an interpolation engine with the given budget.
    pub fn new(budget: Budget) -> Interpolation {
        Interpolation {
            budget,
            lemmas: None,
        }
    }

    /// Subscribes the engine to a cross-seat lemma broadcast.
    #[must_use]
    pub fn with_lemmas(mut self, lemmas: LemmaReceiver) -> Interpolation {
        self.lemmas = Some(lemmas);
        self
    }
}

/// Converts an interpolant over frame-1 latch SAT variables into an AIG
/// function over the latch-output CIs.
fn itp_to_aig(
    itp: &satb::Interpolant,
    var_to_latch: &HashMap<satb::Var, AigLit>,
    aig: &mut Aig,
) -> AigLit {
    let mut out: Vec<AigLit> = Vec::with_capacity(itp.nodes().len());
    for node in itp.nodes() {
        let l = match *node {
            ItpNode::Const(c) => AigLit::constant(c),
            ItpNode::Lit(sl) => {
                let base = *var_to_latch
                    .get(&sl.var())
                    .expect("interpolant variable is a frame-1 latch");
                if sl.is_positive() {
                    base
                } else {
                    !base
                }
            }
            ItpNode::And(a, b) => aig.and(out[a as usize], out[b as usize]),
            ItpNode::Or(a, b) => aig.or(out[a as usize], out[b as usize]),
        };
        out.push(l);
    }
    out[itp.root()]
}

/// The AIG predicate "state equals the reset state" (over initialized
/// latches; uninitialized latches are unconstrained), built in the
/// engine's scratch AIG.
fn init_predicate(sys: &AigSystem, aig: &mut Aig) -> AigLit {
    let lits: Vec<AigLit> = sys
        .latches
        .iter()
        .filter_map(|l| l.init.map(|b| if b { l.output } else { !l.output }))
        .collect();
    aig.and_all(&lits)
}

/// The static invariant as an AIG predicate over the latch-output CIs
/// (conjunction of clause disjunctions), built in the scratch AIG.
fn invariant_predicate(sys: &AigSystem, inv: &[LatchClause], aig: &mut Aig) -> AigLit {
    let clause_lits: Vec<AigLit> = inv
        .iter()
        .map(|clause| {
            let mut acc = AigLit::FALSE;
            for &(i, v) in clause {
                let l = sys.latches[i].output;
                acc = aig.or(acc, if v { l } else { !l });
            }
            acc
        })
        .collect();
    aig.and_all(&clause_lits)
}

impl Checker for Interpolation {
    fn name(&self) -> &'static str {
        "abc-itp"
    }

    fn check(&self, ts: &TransitionSystem) -> CheckOutcome {
        let sys = aig::blast_system(ts);
        // Compile once, simplify once: every frame this run
        // instantiates inherits the preprocessed image.
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        self.run(&sys, &tpl, &[])
    }

    fn check_blasted(&self, _ts: &TransitionSystem, blasted: &Blasted) -> CheckOutcome {
        let mut out = self.run(&blasted.sys, &blasted.template, &blasted.invariant.clauses);
        blasted.stamp(&mut out.stats);
        out
    }
}

impl Interpolation {
    pub(crate) fn run(
        &self,
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        inv: &[LatchClause],
    ) -> CheckOutcome {
        let started = Instant::now();
        let mut stats = EngineStats::default();
        // Scratch AIG for interpolant construction. Cloning preserves
        // node ids, so literals of `sys` stay valid in it while the
        // accumulated interpolants grow it privately — the shared
        // system is never mutated (it may be raced by other portfolio
        // members).
        let mut aig = sys.aig.clone();
        let init_pred = init_predicate(sys, &mut aig);
        let inv_pred = invariant_predicate(sys, inv, &mut aig);

        // Depth-0 check: Init ∧ Bad, one template frame with the reset
        // values asserted.
        {
            let mut solver = Solver::new();
            let f0 = tpl.instantiate(&mut solver, Part::A, 0);
            f0.assert_init(sys, &mut solver);
            for clause in inv {
                solver.add_clause(&clause_on(clause, &f0.latch_cur));
            }
            stats.sat_queries += 1;
            let r0 = solver.solve_limited(&[f0.any_bad], self.budget.sat_limits(started));
            stats.absorb_solver(&solver.stats());
            if let SolveResult::Unknown(why) = r0 {
                // A depth-0 query that hit a limit must not be treated
                // as "no counterexample at depth 0".
                return CheckOutcome::finish(Verdict::Unknown(why.into()), stats, started);
            }
            if r0 == SolveResult::Sat {
                let state: Vec<bool> = f0
                    .latch_cur
                    .iter()
                    .map(|&l| solver.value(l).unwrap_or(false))
                    .collect();
                let inputs: Vec<bool> = f0
                    .inputs
                    .iter()
                    .map(|&l| solver.value(l).unwrap_or(false))
                    .collect();
                let bad_index = f0
                    .bads
                    .iter()
                    .position(|&l| solver.value(l) == Some(true))
                    .unwrap_or(0);
                let trace = Trace {
                    states: vec![state],
                    inputs: vec![inputs],
                    bad_index,
                };
                return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
            }
        }

        // Broadcast lemmas strengthen both sides of every query once
        // they pass the admission gate; `accepted` mirrors the gate's
        // list so each query can assert them like `inv`.
        let mut gate = self.lemmas.as_ref().map(|_| LemmaGate::new(sys, tpl, inv));
        let mut accepted: Vec<LatchClause> = Vec::new();

        let mut k: u32 = 1;
        loop {
            if let Some(u) = self.budget.interruption(started) {
                return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
            }
            if let (Some(rx), Some(gate)) = (&self.lemmas, &mut gate) {
                let pending = rx.drain();
                if !pending.is_empty() {
                    stats.sync_rounds += 1;
                }
                for clause in pending {
                    if gate.admit(&clause, self.budget.sat_limits(started)) {
                        accepted.push(clause);
                        stats.lemmas_imported += 1;
                    }
                }
            }
            if k > self.budget.max_depth {
                return CheckOutcome::finish(
                    Verdict::Unknown(Unknown::BoundReached),
                    stats,
                    started,
                );
            }
            stats.depth = k;

            // Inner fixpoint loop at bound k.
            let mut r_acc = init_pred;
            let mut first = true;
            'inner: loop {
                if let Some(u) = self.budget.interruption(started) {
                    return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
                }
                let query = ItpQuery {
                    sys,
                    tpl,
                    inv,
                    lem: &accepted,
                    r: r_acc,
                    k,
                    started,
                };
                match self.itp_query(&query, &mut aig, &mut stats) {
                    QueryResult::Stopped(u) => {
                        return CheckOutcome::finish(Verdict::Unknown(u), stats, started);
                    }
                    QueryResult::Sat(trace) => {
                        if first {
                            return CheckOutcome::finish(Verdict::Unsafe(trace), stats, started);
                        }
                        // Over-approximation too coarse: deepen.
                        k += 1;
                        break 'inner;
                    }
                    QueryResult::Unsat(itp, map) => {
                        let itp_lit = itp_to_aig(&itp, &map, &mut aig);
                        // Fixpoint check: itp ⇒ r_acc?
                        let mut solver = Solver::new();
                        let mut enc = FrameEncoder::new();
                        let il = enc.encode(&aig, &mut solver, itp_lit, Part::A);
                        let rl = enc.encode(&aig, &mut solver, r_acc, Part::A);
                        solver.add_clause(&[il]);
                        solver.add_clause(&[!rl]);
                        stats.sat_queries += 1;
                        let fr = solver.solve_limited(&[], self.budget.sat_limits(started));
                        stats.absorb_solver(&solver.stats());
                        match fr {
                            SolveResult::Unsat => {
                                // `r_acc ∧ Inv ∧ Lem` is the fixpoint:
                                // init ⇒ r_acc by construction, init ⇒
                                // Inv (certified) and init ⇒ Lem (gate
                                // initiation); the post-image of the
                                // conjunction is inside the latest
                                // interpolant (the A side asserted Inv
                                // and the then-admitted lemmas on
                                // frame 0 — later admissions only
                                // shrink the A states) which just
                                // proved itp ⇒ r_acc — and inside
                                // Inv ∧ Lem by their own consecution —
                                // and the B-side of every query
                                // carried Inv-constrained bad at frame
                                // 1. So the conjunction is a genuine
                                // 1-step inductive invariant, exported
                                // as the Safe witness over the scratch
                                // AIG (node ids align with `sys`).
                                let lem_pred = invariant_predicate(sys, &accepted, &mut aig);
                                let root = aig.and(r_acc, inv_pred);
                                let root = aig.and(root, lem_pred);
                                let cert = crate::certify::Certificate::Formula(
                                    crate::certify::FormulaInvariant {
                                        aig: aig.clone(),
                                        root,
                                    },
                                );
                                return CheckOutcome::finish(Verdict::Safe, stats, started)
                                    .with_certificate(cert);
                            }
                            SolveResult::Sat => {
                                r_acc = aig.or(r_acc, itp_lit);
                                first = false;
                            }
                            SolveResult::Unknown(why) => {
                                return CheckOutcome::finish(
                                    Verdict::Unknown(why.into()),
                                    stats,
                                    started,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

enum QueryResult {
    Sat(Trace),
    Unsat(satb::Interpolant, HashMap<satb::Var, AigLit>),
    Stopped(Unknown),
}

/// The fixed context of one interpolation query (everything but the
/// mutable scratch AIG and statistics).
struct ItpQuery<'a> {
    sys: &'a AigSystem,
    tpl: &'a TransitionTemplate,
    inv: &'a [LatchClause],
    /// Gate-admitted broadcast lemmas, asserted on every frame exactly
    /// like `inv` (inductive relative to it by admission).
    lem: &'a [LatchClause],
    /// Current reachability over-approximation `R`.
    r: AigLit,
    /// Unrolling bound.
    k: u32,
    started: Instant,
}

impl Interpolation {
    /// One interpolation query: refute `R(s0) ∧ Inv(s0) ∧ T ∧ (bad
    /// within k, under Inv)`.
    ///
    /// Frame 0 is a template instantiation in `Part::A` (its next-state
    /// outputs tied to pre-created frame-1 interface variables), frames
    /// `1..k` are chained template instantiations in `Part::B` — only
    /// `R`'s cone, which changes every iteration, still goes through a
    /// `FrameEncoder`. The static invariant is asserted on every
    /// frame's current-state literals, A-part on frame 0 and B-part on
    /// the free frames (mandatory on invariant-refined templates).
    fn itp_query(&self, q: &ItpQuery<'_>, aig: &mut Aig, stats: &mut EngineStats) -> QueryResult {
        let ItpQuery {
            sys,
            tpl,
            inv,
            lem,
            r,
            k,
            started,
        } = *q;
        let mut solver = Solver::with_proof();

        // Shared interface: frame-1 latch variables, created first so
        // the interpolant ranges over exactly these.
        let f1: Vec<Lit> = sys
            .latches
            .iter()
            .map(|_| Lit::pos(solver.new_var()))
            .collect();

        // --- A side: R(s0) ∧ T(s0, s1), outputs tied to f1. ---
        let a0 = tpl.instantiate(&mut solver, Part::A, 0);
        let mut enc_a = FrameEncoder::new();
        for (latch, &l) in sys.latches.iter().zip(&a0.latch_cur) {
            enc_a.bind(latch.output, l);
        }
        let rl = enc_a.encode(aig, &mut solver, r, Part::A);
        solver.add_clause_in(&[rl], Part::A);
        for clause in inv.iter().chain(lem) {
            solver.add_clause_in(&clause_on(clause, &a0.latch_cur), Part::A);
        }
        for (i, &nl) in a0.latch_next.iter().enumerate() {
            // nl <-> f1[i]
            solver.add_clause_in(&[!nl, f1[i]], Part::A);
            solver.add_clause_in(&[nl, !f1[i]], Part::A);
        }

        // --- B side: frames 1..k chained from f1, bads at 1..=k. ---
        let mut frames: Vec<FrameVars> = Vec::with_capacity(k as usize);
        let mut cur = f1.clone();
        for _ in 1..=k {
            let inst = tpl.instantiate_bound(&mut solver, Part::B, 0, &cur);
            for clause in inv.iter().chain(lem) {
                solver.add_clause_in(&clause_on(clause, &inst.latch_cur), Part::B);
            }
            cur = inst.latch_next.clone();
            frames.push(inst);
        }
        let bad_lits: Vec<Lit> = frames.iter().map(|f| f.any_bad).collect();
        solver.add_clause_in(&bad_lits, Part::B);

        stats.sat_queries += 1;
        let qr = solver.solve_limited(&[], self.budget.sat_limits(started));
        stats.absorb_solver(&solver.stats());
        match qr {
            SolveResult::Unknown(why) => QueryResult::Stopped(why.into()),
            SolveResult::Unsat => {
                let itp = solver.interpolant().expect("proof-logged refutation");
                let map: HashMap<satb::Var, AigLit> = f1
                    .iter()
                    .zip(&sys.latches)
                    .map(|(&l, latch)| (l.var(), latch.output))
                    .collect();
                QueryResult::Unsat(itp, map)
            }
            SolveResult::Sat => {
                // Extract the counterexample path: frames 0..=j where j
                // is the first frame whose bad literal is true.
                let j = bad_lits
                    .iter()
                    .position(|&b| solver.value(b) == Some(true))
                    .map_or(k as usize, |p| p + 1);
                let mut states = Vec::with_capacity(j + 1);
                let mut inputs = Vec::with_capacity(j + 1);
                for f in 0..=j {
                    let (latch_lits, input_lits) = if f == 0 {
                        (&a0.latch_cur, &a0.inputs)
                    } else {
                        (&frames[f - 1].latch_cur, &frames[f - 1].inputs)
                    };
                    let st: Vec<bool> = latch_lits
                        .iter()
                        .map(|&l| solver.value(l).unwrap_or(false))
                        .collect();
                    states.push(st);
                    let inp: Vec<bool> = input_lits
                        .iter()
                        .map(|&l| solver.value(l).unwrap_or(false))
                        .collect();
                    inputs.push(inp);
                }
                // Identify the fired bad property at frame j.
                let bad_index = frames[j - 1]
                    .bads
                    .iter()
                    .position(|&l| solver.value(l) == Some(true))
                    .unwrap_or(0);
                QueryResult::Sat(Trace {
                    states,
                    inputs,
                    bad_index,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::Sort;

    #[test]
    fn proves_saturating_counter() {
        // count saturates at 10; bad: count > 10. Interpolation should
        // converge without unrolling to the full diameter.
        let mut ts = TransitionSystem::new("sat-counter");
        let s = ts.add_state("count", Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let lim = ts.pool_mut().constv(8, 10);
        let one = ts.pool_mut().constv(8, 1);
        let at = ts.pool_mut().uge(sv, lim);
        let inc = ts.pool_mut().add(sv, one);
        let next = ts.pool_mut().ite(at, sv, inc);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let bad = ts.pool_mut().ugt(sv, lim);
        ts.add_bad(bad, "overflow");
        let out = Interpolation::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
    }

    #[test]
    fn finds_shallow_and_deep_bugs() {
        for depth in [0u64, 1, 9, 21] {
            let ts = crate::bmc::tests::counter_ts(depth, 8);
            let out = Interpolation::default().check(&ts);
            match out.outcome {
                Verdict::Unsafe(trace) => {
                    assert_eq!(trace.length() as u64, depth, "depth {depth}");
                    let sys = aig::blast_system(&ts);
                    assert!(trace.replays_on(&sys), "trace replays, depth {depth}");
                }
                other => panic!("expected Unsafe at depth {depth}, got {other:?}"),
            }
        }
    }

    #[test]
    fn proves_trap_design() {
        // The unreachable-loop design that defeats plain k-induction:
        // interpolation proves it because the reachable set { a=0 } has
        // a tiny over-approximation.
        let mut ts = TransitionSystem::new("trap");
        let jump = ts.add_input("jump", Sort::BOOL);
        let a = ts.add_state("a", Sort::BOOL);
        let c = ts.add_state("c", Sort::Bv(2));
        let (jv, av, cv) = {
            let p = ts.pool_mut();
            (p.var(jump), p.var(a), p.var(c))
        };
        let p = ts.pool_mut();
        let two = p.constv(2, 2);
        let three = p.constv(2, 3);
        let one = p.constv(2, 1);
        let zero2 = p.constv(2, 0);
        let zero1 = p.constv(1, 0);
        let at2 = p.eq(cv, two);
        let inc = p.add(cv, one);
        let cyc = p.ite(at2, zero2, inc);
        let jumped = p.ite(jv, three, cyc);
        let c_next = p.ite(av, jumped, zero2);
        let at3 = p.eq(cv, three);
        let bad = p.and(av, at3);
        ts.set_init(a, zero1);
        ts.set_init(c, zero2);
        ts.set_next(a, av);
        ts.set_next(c, c_next);
        ts.add_bad(bad, "trap");
        let out = Interpolation::default().check(&ts);
        assert_eq!(out.outcome, Verdict::Safe);
    }
}
