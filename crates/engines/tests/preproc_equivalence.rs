//! Preprocessed-template equivalence across engines: on random
//! sequential AIGs, every engine must reach the same verdict from the
//! raw and the SatELite-preprocessed clause image, and every `Unsafe`
//! trace must replay to a fired bad output on the bit-level netlist
//! (`aig::sim`) regardless of which encoding produced it.

use engines::bmc::Bmc;
use engines::kind::KInduction;
use engines::pdr::Pdr;
use engines::pdr_baseline::PerFramePdr;
use engines::{Blasted, Budget, Checker, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn blasted_of(sys: &aig::AigSystem, tpl: aig::TransitionTemplate) -> Blasted {
    Blasted {
        sys: Arc::new(sys.clone()),
        template: Arc::new(tpl),
        preproc_stats: Default::default(),
        invariant: Arc::new(aig::StaticInvariant::default()),
        invariant_certified: true,
    }
}

#[test]
fn engine_verdicts_identical_on_raw_and_preprocessed_templates() {
    let mut rng = StdRng::seed_from_u64(0x50C2016);
    // Bit-level engines take the netlist from `Blasted` and ignore the
    // word-level system.
    let dummy = rtlir::TransitionSystem::new("aig-direct");
    for round in 0..15 {
        let sys =
            aig::testutil::random_system(&mut rng, &aig::testutil::RandomSystemConfig::default());
        let raw = aig::TransitionTemplate::compile(&sys);
        let pre = raw.preprocess();
        let b_raw = blasted_of(&sys, raw);
        let b_pre = blasted_of(&sys, pre.template);
        let budget = Budget {
            timeout: None,
            max_depth: 48,
            ..Budget::default()
        };
        let checkers: Vec<Box<dyn Checker>> = vec![
            Box::new(Bmc::new(budget.clone())),
            Box::new(KInduction::new(budget.clone())),
            Box::new(Pdr::new(budget.clone())),
            Box::new(PerFramePdr::new(budget.clone())),
        ];
        for c in &checkers {
            let r = c.check_blasted(&dummy, &b_raw);
            let p = c.check_blasted(&dummy, &b_pre);
            match (&r.outcome, &p.outcome) {
                (Verdict::Safe, Verdict::Unsafe(_)) | (Verdict::Unsafe(_), Verdict::Safe) => {
                    panic!(
                        "round {round}: {} diverges: raw {:?} vs preprocessed {:?}",
                        c.name(),
                        r.outcome,
                        p.outcome
                    );
                }
                _ => {}
            }
            for (label, out) in [("raw", &r), ("preprocessed", &p)] {
                if let Verdict::Unsafe(trace) = &out.outcome {
                    assert!(
                        trace.replays_on(&sys),
                        "round {round}: {} {label} trace does not replay",
                        c.name()
                    );
                }
            }
            // BMC verdicts are depth-deterministic: the first depth
            // with a satisfiable bad query is an encoding-independent
            // property, so the counterexample lengths must match.
            if c.name() == "bmc" {
                if let (Verdict::Unsafe(tr), Verdict::Unsafe(tp)) = (&r.outcome, &p.outcome) {
                    assert_eq!(tr.length(), tp.length(), "round {round}: BMC depth");
                }
            }
        }
    }
}
