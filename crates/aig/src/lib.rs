//! And-inverter graphs, bit-blasting and CNF encoding.
//!
//! This crate is the bit-level design representation of the flow (the
//! role AIGER/ABC plays in the paper): a structurally hashed [`Aig`],
//! a [`Blaster`] that lowers word-level [`rtlir`] expressions to bits,
//! a sequential [`AigSystem`] (latches + bads, the bit-level netlist a
//! hardware model checker consumes), a Tseitin [`FrameEncoder`] that
//! encodes AIG cones into a [`satb::Solver`], and a compile-once
//! [`TransitionTemplate`] that the unrolling engines instantiate per
//! time frame by variable-offset arithmetic instead of re-encoding.
//!
//! The lowering is purely structural — no synthesis optimization — in
//! line with the paper's §III-C trustworthiness argument; every
//! operator's lowering is property-tested against the `rtlir`
//! evaluator.
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//!
//! let mut g = Aig::new();
//! let a = g.new_ci();
//! let b = g.new_ci();
//! let c = g.and(a, b);
//! assert!(g.eval(c, &[true, true]));
//! assert!(!g.eval(c, &[true, false]));
//! // Structural hashing: the same AND is not duplicated.
//! assert_eq!(g.and(b, a), c);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod blast;
pub mod cnf;
pub mod graph;
pub mod seq;
pub mod sim;
pub mod template;
#[cfg(any(test, feature = "testutil"))]
#[doc(hidden)]
pub mod testutil;

pub use analysis::{
    analyze, refine_with_constants, AnalysisConfig, AnalysisStats, StaticInvariant,
};
pub use blast::{ArrayBits, Blaster, Bundle};
pub use cnf::FrameEncoder;
pub use graph::{Aig, AigLit};
pub use seq::{blast_system, AigSystem, Latch};
pub use sim::{Tern, TernarySim};
pub use template::{FrameVars, PreprocessedTemplate, TemplateRecon, TransitionTemplate};
