//! Word-level to bit-level lowering (bit-blasting).

use crate::graph::{Aig, AigLit};
use rtlir::{BinOp, ExprId, ExprPool, Node, Sort, UnOp, VarId};
use std::collections::HashMap;

/// Bit-level image of an array-sorted expression: one bit-vector per
/// element, fully expanded (index widths in this workspace are small).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayBits {
    /// Width of the index bit-vector.
    pub index_width: u32,
    /// Width of each element.
    pub elem_width: u32,
    /// `2^index_width` element bit-vectors, LSB first.
    pub elems: Vec<Vec<AigLit>>,
}

/// Bit-level image of a word-level expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bundle {
    /// A bit-vector, least-significant bit first.
    Bits(Vec<AigLit>),
    /// An expanded array.
    Array(ArrayBits),
}

impl Bundle {
    /// The bit-vector, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is an array.
    pub fn bits(&self) -> &[AigLit] {
        match self {
            Bundle::Bits(b) => b,
            Bundle::Array(_) => panic!("bits() called on array bundle"),
        }
    }

    /// The single literal of a 1-bit bundle.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is not exactly one bit.
    pub fn bit(&self) -> AigLit {
        let b = self.bits();
        assert_eq!(b.len(), 1, "bundle is not a single bit");
        b[0]
    }

    /// The array image.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is a bit-vector.
    pub fn array(&self) -> &ArrayBits {
        match self {
            Bundle::Array(a) => a,
            Bundle::Bits(_) => panic!("array() called on bit-vector bundle"),
        }
    }
}

/// Lowers word-level expressions of one [`ExprPool`] into an [`Aig`].
///
/// Variables can be pre-bound to existing AIG literals with
/// [`bind`](Blaster::bind) (used to wire latch outputs and shared
/// frame variables); unbound variables get fresh CIs on first use.
///
/// # Example
///
/// ```
/// use aig::{Blaster, Bundle};
/// use rtlir::{ExprPool, Sort};
///
/// let mut p = ExprPool::new();
/// let x = p.new_var("x", Sort::Bv(4));
/// let xv = p.var(x);
/// let c = p.constv(4, 5);
/// let e = p.add(xv, c);
/// let mut b = Blaster::new(&p);
/// let bits = b.blast(e).bits().to_vec();
/// assert_eq!(bits.len(), 4);
/// // 3 + 5 == 8 in 4 bits: CI values for x are LSB-first.
/// let x_val = [true, true, false, false]; // 3
/// let out: Vec<bool> = bits.iter().map(|&l| b.aig().eval(l, &x_val)).collect();
/// assert_eq!(out, [false, false, false, true]); // 8
/// ```
#[derive(Debug)]
pub struct Blaster<'p> {
    pool: &'p ExprPool,
    aig: Aig,
    bound: HashMap<VarId, Bundle>,
    cache: HashMap<ExprId, Bundle>,
}

impl<'p> Blaster<'p> {
    /// Creates a blaster over a fresh AIG.
    pub fn new(pool: &'p ExprPool) -> Blaster<'p> {
        Blaster::with_aig(pool, Aig::new())
    }

    /// Creates a blaster that extends an existing AIG.
    pub fn with_aig(pool: &'p ExprPool, aig: Aig) -> Blaster<'p> {
        Blaster {
            pool,
            aig,
            bound: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// The underlying AIG.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the underlying AIG.
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Consumes the blaster, returning the AIG.
    pub fn into_aig(self) -> Aig {
        self.aig
    }

    /// Pre-binds a variable to existing AIG literals.
    ///
    /// # Panics
    ///
    /// Panics if the bundle shape does not match the variable's sort.
    pub fn bind(&mut self, v: VarId, bundle: Bundle) {
        match (self.pool.var_sort(v), &bundle) {
            (Sort::Bv(w), Bundle::Bits(b)) => {
                assert_eq!(b.len(), w as usize, "binding width mismatch for {v}");
            }
            (
                Sort::Array {
                    index_width,
                    elem_width,
                },
                Bundle::Array(a),
            ) => {
                assert_eq!(a.index_width, index_width);
                assert_eq!(a.elem_width, elem_width);
                assert_eq!(a.elems.len(), 1usize << index_width);
            }
            (s, _) => panic!("binding shape mismatch for {v}: sort {s}"),
        }
        self.bound.insert(v, bundle);
    }

    /// Creates fresh CIs for a variable (and binds them).
    pub fn fresh_var(&mut self, v: VarId) -> Bundle {
        let bundle = match self.pool.var_sort(v) {
            Sort::Bv(w) => Bundle::Bits((0..w).map(|_| self.aig.new_ci()).collect()),
            Sort::Array {
                index_width,
                elem_width,
            } => {
                let n = 1usize << index_width;
                let elems = (0..n)
                    .map(|_| (0..elem_width).map(|_| self.aig.new_ci()).collect())
                    .collect();
                Bundle::Array(ArrayBits {
                    index_width,
                    elem_width,
                    elems,
                })
            }
        };
        self.bound.insert(v, bundle.clone());
        bundle
    }

    /// Lowers an expression, returning its bit-level image.
    pub fn blast(&mut self, root: ExprId) -> Bundle {
        if let Some(b) = self.cache.get(&root) {
            return b.clone();
        }
        // Iterative post-order over the expression DAG.
        let mut stack: Vec<(ExprId, bool)> = vec![(root, false)];
        while let Some((e, expanded)) = stack.pop() {
            if self.cache.contains_key(&e) {
                continue;
            }
            if !expanded {
                stack.push((e, true));
                match self.pool.node(e) {
                    Node::Const { .. } | Node::Var(_) | Node::ConstArray { .. } => {}
                    Node::Un(_, a) | Node::Extract { arg: a, .. } => stack.push((*a, false)),
                    Node::Zext { arg, .. } | Node::Sext { arg, .. } => stack.push((*arg, false)),
                    Node::Bin(_, a, b) => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                    Node::Ite(c, t, f) => {
                        stack.push((*c, false));
                        stack.push((*t, false));
                        stack.push((*f, false));
                    }
                    Node::Read { array, index } => {
                        stack.push((*array, false));
                        stack.push((*index, false));
                    }
                    Node::Write {
                        array,
                        index,
                        value,
                    } => {
                        stack.push((*array, false));
                        stack.push((*index, false));
                        stack.push((*value, false));
                    }
                }
                continue;
            }
            let bundle = self.lower_node(e);
            self.cache.insert(e, bundle);
        }
        self.cache[&root].clone()
    }

    /// Convenience: lowers a single-bit expression to one literal.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not one bit wide.
    pub fn blast_bit(&mut self, e: ExprId) -> AigLit {
        self.blast(e).bit()
    }

    fn lower_node(&mut self, e: ExprId) -> Bundle {
        let node = self.pool.node(e).clone();
        match node {
            Node::Const { width, bits } => Bundle::Bits(const_bits(width, bits)),
            Node::ConstArray {
                index_width,
                elem_width,
                bits,
            } => {
                let n = 1usize << index_width;
                Bundle::Array(ArrayBits {
                    index_width,
                    elem_width,
                    elems: vec![const_bits(elem_width, bits); n],
                })
            }
            Node::Var(v) => match self.bound.get(&v) {
                Some(b) => b.clone(),
                None => self.fresh_var(v),
            },
            Node::Un(op, a) => {
                let ab = self.cache[&a].bits().to_vec();
                let g = &mut self.aig;
                let out = match op {
                    UnOp::Not => ab.iter().map(|&l| !l).collect(),
                    UnOp::Neg => {
                        let inv: Vec<AigLit> = ab.iter().map(|&l| !l).collect();
                        add_const_one(g, &inv)
                    }
                    UnOp::RedAnd => vec![g.and_all(&ab)],
                    UnOp::RedOr => vec![g.or_all(&ab)],
                    UnOp::RedXor => {
                        let mut acc = AigLit::FALSE;
                        for &l in &ab {
                            acc = g.xor(acc, l);
                        }
                        vec![acc]
                    }
                };
                Bundle::Bits(out)
            }
            Node::Bin(op, a, b) => {
                let ab = self.cache[&a].bits().to_vec();
                let bb = self.cache[&b].bits().to_vec();
                let g = &mut self.aig;
                let out = match op {
                    BinOp::And => zip_map(g, &ab, &bb, Aig::and),
                    BinOp::Or => zip_map(g, &ab, &bb, Aig::or),
                    BinOp::Xor => zip_map(g, &ab, &bb, Aig::xor),
                    BinOp::Add => adder(g, &ab, &bb, AigLit::FALSE, false),
                    BinOp::Sub => {
                        let nb: Vec<AigLit> = bb.iter().map(|&l| !l).collect();
                        adder(g, &ab, &nb, AigLit::TRUE, false)
                    }
                    BinOp::Mul => multiplier(g, &ab, &bb),
                    BinOp::Udiv => divider(g, &ab, &bb).0,
                    BinOp::Urem => divider(g, &ab, &bb).1,
                    BinOp::Shl => shifter(g, &ab, &bb, ShiftKind::Left),
                    BinOp::Lshr => shifter(g, &ab, &bb, ShiftKind::RightLogical),
                    BinOp::Ashr => shifter(g, &ab, &bb, ShiftKind::RightArith),
                    BinOp::Eq => vec![equality(g, &ab, &bb)],
                    BinOp::Ult => vec![less_than(g, &ab, &bb, false)],
                    BinOp::Ule => vec![!less_than(g, &bb, &ab, false)],
                    BinOp::Slt => vec![less_than(g, &ab, &bb, true)],
                    BinOp::Sle => vec![!less_than(g, &bb, &ab, true)],
                    BinOp::Concat => {
                        // a is the high part: low bits come from b.
                        let mut out = bb.clone();
                        out.extend_from_slice(&ab);
                        out
                    }
                };
                Bundle::Bits(out)
            }
            Node::Ite(c, t, f) => {
                let cl = self.cache[&c].bit();
                match (self.cache[&t].clone(), self.cache[&f].clone()) {
                    (Bundle::Bits(tb), Bundle::Bits(fb)) => {
                        Bundle::Bits(zip_map3(&mut self.aig, cl, &tb, &fb))
                    }
                    (Bundle::Array(ta), Bundle::Array(fa)) => {
                        let elems = ta
                            .elems
                            .iter()
                            .zip(&fa.elems)
                            .map(|(te, fe)| zip_map3(&mut self.aig, cl, te, fe))
                            .collect();
                        Bundle::Array(ArrayBits {
                            index_width: ta.index_width,
                            elem_width: ta.elem_width,
                            elems,
                        })
                    }
                    _ => unreachable!("ite branches have equal sorts"),
                }
            }
            Node::Extract { hi, lo, arg } => {
                let ab = self.cache[&arg].bits();
                Bundle::Bits(ab[lo as usize..=hi as usize].to_vec())
            }
            Node::Zext { arg, width } => {
                let mut out = self.cache[&arg].bits().to_vec();
                out.resize(width as usize, AigLit::FALSE);
                Bundle::Bits(out)
            }
            Node::Sext { arg, width } => {
                let mut out = self.cache[&arg].bits().to_vec();
                let sign = *out.last().expect("nonempty bv");
                out.resize(width as usize, sign);
                Bundle::Bits(out)
            }
            Node::Read { array, index } => {
                let arr = self.cache[&array].array().clone();
                let idx = self.cache[&index].bits().to_vec();
                let g = &mut self.aig;
                let mut acc = arr.elems[0].clone();
                for (i, elem) in arr.elems.iter().enumerate().skip(1) {
                    let sel = index_equals(g, &idx, i as u64);
                    acc = zip_map3(g, sel, elem, &acc);
                }
                Bundle::Bits(acc)
            }
            Node::Write {
                array,
                index,
                value,
            } => {
                let arr = self.cache[&array].array().clone();
                let idx = self.cache[&index].bits().to_vec();
                let val = self.cache[&value].bits().to_vec();
                let g = &mut self.aig;
                let elems = arr
                    .elems
                    .iter()
                    .enumerate()
                    .map(|(i, elem)| {
                        let sel = index_equals(g, &idx, i as u64);
                        zip_map3(g, sel, &val, elem)
                    })
                    .collect();
                Bundle::Array(ArrayBits {
                    index_width: arr.index_width,
                    elem_width: arr.elem_width,
                    elems,
                })
            }
        }
    }
}

fn const_bits(width: u32, bits: u64) -> Vec<AigLit> {
    (0..width)
        .map(|i| AigLit::constant((bits >> i) & 1 == 1))
        .collect()
}

fn zip_map(
    g: &mut Aig,
    a: &[AigLit],
    b: &[AigLit],
    f: fn(&mut Aig, AigLit, AigLit) -> AigLit,
) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| f(g, x, y)).collect()
}

fn zip_map3(g: &mut Aig, c: AigLit, t: &[AigLit], e: &[AigLit]) -> Vec<AigLit> {
    t.iter().zip(e).map(|(&x, &y)| g.mux(c, x, y)).collect()
}

/// Ripple-carry adder; `extra` requests one extra output bit (carry).
fn adder(g: &mut Aig, a: &[AigLit], b: &[AigLit], carry_in: AigLit, extra: bool) -> Vec<AigLit> {
    let mut out = Vec::with_capacity(a.len() + extra as usize);
    let mut carry = carry_in;
    for (&x, &y) in a.iter().zip(b) {
        let xy = g.xor(x, y);
        out.push(g.xor(xy, carry));
        let c1 = g.and(x, y);
        let c2 = g.and(xy, carry);
        carry = g.or(c1, c2);
    }
    if extra {
        out.push(carry);
    }
    out
}

fn add_const_one(g: &mut Aig, a: &[AigLit]) -> Vec<AigLit> {
    let one: Vec<AigLit> = (0..a.len()).map(|i| AigLit::constant(i == 0)).collect();
    adder(g, a, &one, AigLit::FALSE, false)
}

/// Shift-and-add multiplier, truncated to the operand width.
fn multiplier(g: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    let w = a.len();
    let mut acc: Vec<AigLit> = vec![AigLit::FALSE; w];
    for (i, &bi) in b.iter().enumerate() {
        // partial = (a << i) & bi, truncated to w bits.
        let mut partial = vec![AigLit::FALSE; w];
        for j in 0..(w - i) {
            partial[i + j] = g.and(a[j], bi);
        }
        acc = adder(g, &acc, &partial, AigLit::FALSE, false);
    }
    acc
}

/// Restoring divider: returns `(quotient, remainder)` with the SMT-LIB
/// division-by-zero convention (`q = ~0`, `r = a`).
fn divider(g: &mut Aig, a: &[AigLit], b: &[AigLit]) -> (Vec<AigLit>, Vec<AigLit>) {
    let w = a.len();
    // Work with w+1-bit remainder to avoid compare overflow.
    let bx: Vec<AigLit> = b.iter().copied().chain([AigLit::FALSE]).collect();
    let mut r: Vec<AigLit> = vec![AigLit::FALSE; w + 1];
    let mut q: Vec<AigLit> = vec![AigLit::FALSE; w];
    for i in (0..w).rev() {
        // r = (r << 1) | a[i]
        let mut r2: Vec<AigLit> = Vec::with_capacity(w + 1);
        r2.push(a[i]);
        r2.extend_from_slice(&r[..w]);
        // ge = r2 >= bx  <=>  !(r2 < bx)
        let lt = less_than(g, &r2, &bx, false);
        let ge = !lt;
        // r = ge ? r2 - bx : r2
        let nb: Vec<AigLit> = bx.iter().map(|&l| !l).collect();
        let diff = adder(g, &r2, &nb, AigLit::TRUE, false);
        r = diff
            .iter()
            .zip(&r2)
            .map(|(&d, &o)| g.mux(ge, d, o))
            .collect();
        q[i] = ge;
    }
    // Division by zero: q = all ones, r = a.
    let bits_b: Vec<AigLit> = b.to_vec();
    let zero: Vec<AigLit> = vec![AigLit::FALSE; w];
    let bz = equality(g, &bits_b, &zero);
    let q_final: Vec<AigLit> = q.iter().map(|&l| g.mux(bz, AigLit::TRUE, l)).collect();
    let r_final: Vec<AigLit> = r[..w]
        .iter()
        .zip(a)
        .map(|(&rl, &al)| g.mux(bz, al, rl))
        .collect();
    (q_final, r_final)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    RightLogical,
    RightArith,
}

/// Barrel shifter with saturation for out-of-range shift amounts.
fn shifter(g: &mut Aig, a: &[AigLit], sh: &[AigLit], kind: ShiftKind) -> Vec<AigLit> {
    let w = a.len();
    let fill_top = match kind {
        ShiftKind::RightArith => *a.last().expect("nonempty"),
        _ => AigLit::FALSE,
    };
    // Number of shift stages actually needed: shifts >= w saturate.
    let stages = (64 - (w as u64 - 1).leading_zeros()).max(1) as usize; // ceil(log2(w))
    let mut cur: Vec<AigLit> = a.to_vec();
    for s in 0..stages.min(sh.len()) {
        let amount = 1usize << s;
        let bit = sh[s];
        let mut shifted = vec![fill_top; w];
        match kind {
            ShiftKind::Left => {
                for j in (amount..w).rev() {
                    shifted[j] = cur[j - amount];
                }
                for item in shifted.iter_mut().take(amount.min(w)) {
                    *item = AigLit::FALSE;
                }
            }
            ShiftKind::RightLogical | ShiftKind::RightArith => {
                let keep = w.saturating_sub(amount);
                shifted[..keep].copy_from_slice(&cur[amount..amount + keep]);
            }
        }
        cur = cur
            .iter()
            .zip(&shifted)
            .map(|(&orig, &shf)| g.mux(bit, shf, orig))
            .collect();
    }
    // If any shift bit at or above `stages` is set, or the staged bits
    // encode a value >= w (only possible when w is not a power of two),
    // the result saturates.
    let mut overflow = AigLit::FALSE;
    for &b in sh.iter().skip(stages) {
        overflow = g.or(overflow, b);
    }
    if !w.is_power_of_two() {
        // Compare the low `stages` bits against w.
        let low: Vec<AigLit> = sh.iter().copied().take(stages).collect();
        let wconst: Vec<AigLit> = (0..stages)
            .map(|i| AigLit::constant((w >> i) & 1 == 1))
            .collect();
        let ge_w = !less_than(g, &low, &wconst, false);
        overflow = g.or(overflow, ge_w);
    }
    cur.iter().map(|&l| g.mux(overflow, fill_top, l)).collect()
}

fn equality(g: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let mut acc = AigLit::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let ne = g.xor(x, y);
        acc = g.and(acc, !ne);
    }
    acc
}

/// `a < b`, unsigned or signed (two's complement).
fn less_than(g: &mut Aig, a: &[AigLit], b: &[AigLit], signed: bool) -> AigLit {
    let w = a.len();
    let mut acc = AigLit::FALSE;
    for i in 0..w {
        let (x, y) = if signed && i == w - 1 {
            // For the sign bit, "a negative, b positive" means a < b:
            // flip both bits to reuse the unsigned cell.
            (!a[i], !b[i])
        } else {
            (a[i], b[i])
        };
        let eq = !g.xor(x, y);
        let lt = g.and(!x, y);
        acc = g.mux(eq, acc, lt);
    }
    acc
}

fn index_equals(g: &mut Aig, idx: &[AigLit], value: u64) -> AigLit {
    let mut acc = AigLit::TRUE;
    for (i, &l) in idx.iter().enumerate() {
        let want = (value >> i) & 1 == 1;
        let bit = if want { l } else { !l };
        acc = g.and(acc, bit);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlir::{eval, Value};

    /// Blasts `f(x, y)` and cross-checks against the rtlir evaluator on
    /// random inputs, for each operator and width.
    #[test]
    fn operators_agree_with_evaluator() {
        let widths = [1u32, 3, 4, 7, 8, 13, 16];
        let mut rng = StdRng::seed_from_u64(42);
        for &w in &widths {
            let mut p = ExprPool::new();
            let x = p.new_var("x", Sort::Bv(w));
            let y = p.new_var("y", Sort::Bv(w));
            let (xe, ye) = (p.var(x), p.var(y));
            let mut exprs = vec![
                p.and(xe, ye),
                p.or(xe, ye),
                p.xor(xe, ye),
                p.add(xe, ye),
                p.sub(xe, ye),
                p.mul(xe, ye),
                p.udiv(xe, ye),
                p.urem(xe, ye),
                p.shl(xe, ye),
                p.lshr(xe, ye),
                p.ashr(xe, ye),
                p.eq(xe, ye),
                p.ult(xe, ye),
                p.ule(xe, ye),
                p.slt(xe, ye),
                p.sle(xe, ye),
                p.not(xe),
                p.neg(xe),
                p.redand(xe),
                p.redor(xe),
                p.redxor(xe),
            ];
            if 2 * w <= 64 {
                exprs.push(p.concat(xe, ye));
            }
            if w > 1 {
                exprs.push(p.extract(xe, w - 1, 1));
                let low = p.extract(xe, 0, 0);
                exprs.push(p.zext(low, w));
            }
            let se = p.sext(xe, (w + 3).min(64));
            exprs.push(se);
            let cond = p.redor(ye);
            exprs.push(p.ite(cond, xe, ye));

            let mut blaster = Blaster::new(&p);
            // Fix the CI order: x bits first, then y bits.
            blaster.fresh_var(x);
            blaster.fresh_var(y);
            let blasted: Vec<(ExprId, Vec<AigLit>)> = exprs
                .iter()
                .map(|&e| (e, blaster.blast(e).bits().to_vec()))
                .collect();

            for _ in 0..40 {
                let xv: u64 = rng.gen::<u64>() & rtlir::value::mask(w);
                let yv: u64 = if rng.gen_bool(0.15) {
                    0
                } else {
                    rng.gen::<u64>() & rtlir::value::mask(w)
                };
                // CI order: x bits then y bits (first use order).
                let mut cis: Vec<bool> = Vec::new();
                for i in 0..w {
                    cis.push((xv >> i) & 1 == 1);
                }
                for i in 0..w {
                    cis.push((yv >> i) & 1 == 1);
                }
                let env = |v: VarId| {
                    if v == x {
                        Value::bv(w, xv)
                    } else {
                        Value::bv(w, yv)
                    }
                };
                for (e, bits) in &blasted {
                    let want = eval(&p, *e, &env).bits();
                    let mut got = 0u64;
                    for (i, &l) in bits.iter().enumerate() {
                        if blaster.aig().eval(l, &cis) {
                            got |= 1 << i;
                        }
                    }
                    assert_eq!(
                        got,
                        want,
                        "w={w} op={} x={xv} y={yv}",
                        rtlir::printer::print_expr(&p, *e)
                    );
                }
            }
        }
    }

    #[test]
    fn shift_by_wide_amount_saturates() {
        // 8-bit value shifted by an 8-bit amount: amounts >= 8 give 0.
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(8));
        let s = p.new_var("s", Sort::Bv(8));
        let (xe, se) = (p.var(x), p.var(s));
        let e = p.shl(xe, se);
        let mut b = Blaster::new(&p);
        b.fresh_var(x); // CI order: x bits 0..8, then s bits 8..16
        b.fresh_var(s);
        let bits = b.blast(e).bits().to_vec();
        let mut cis = vec![false; 16];
        cis[0] = true; // x = 1
        cis[8 + 3] = true; // s = 8
        for &l in &bits {
            assert!(!b.aig().eval(l, &cis), "1 << 8 must be 0 in 8 bits");
        }
    }

    #[test]
    fn array_read_write_blasting() {
        let mut p = ExprPool::new();
        let mem = p.new_var("mem", Sort::array(2, 4));
        let m = p.var(mem);
        let i1 = p.constv(2, 1);
        let v9 = p.constv(4, 9);
        let m2 = p.write(m, i1, v9);
        let idx = p.new_var("i", Sort::Bv(2));
        let iv = p.var(idx);
        let r = p.read(m2, iv);

        let mut b = Blaster::new(&p);
        b.fresh_var(mem); // CI order: mem elements first, then idx
        b.fresh_var(idx);
        let bits = b.blast(r).bits().to_vec();
        // CI order: mem elements (4 elems x 4 bits), then idx (2 bits).
        let mut cis = vec![false; 16 + 2];
        // mem[2] = 0b0101
        cis[2 * 4] = true;
        cis[2 * 4 + 2] = true;
        // idx = 1 -> written value 9
        cis[16] = true;
        let val = |b: &Blaster, bits: &[AigLit], cis: &[bool]| {
            let mut out = 0u64;
            for (i, &l) in bits.iter().enumerate() {
                if b.aig().eval(l, cis) {
                    out |= 1 << i;
                }
            }
            out
        };
        assert_eq!(val(&b, &bits, &cis), 9);
        // idx = 2 -> original element 5
        cis[16] = false;
        cis[17] = true;
        assert_eq!(val(&b, &bits, &cis), 5);
    }

    #[test]
    fn bound_variables_are_reused() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(2));
        let xe = p.var(x);
        let e = p.add(xe, xe);
        let mut b = Blaster::new(&p);
        let ci0 = b.aig_mut().new_ci();
        let ci1 = b.aig_mut().new_ci();
        b.bind(x, Bundle::Bits(vec![ci0, ci1]));
        let bits = b.blast(e).bits().to_vec();
        // x + x with x = 1 gives 2.
        assert!(!b.aig().eval(bits[0], &[true, false]));
        assert!(b.aig().eval(bits[1], &[true, false]));
        assert_eq!(b.aig().num_cis(), 2, "no extra CIs for bound variable");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bind_wrong_width_panics() {
        let mut p = ExprPool::new();
        let x = p.new_var("x", Sort::Bv(4));
        let mut b = Blaster::new(&p);
        let ci = b.aig_mut().new_ci();
        b.bind(x, Bundle::Bits(vec![ci]));
    }
}
