//! Randomized test-support generators.
//!
//! Shared by this crate's own test modules and — through the
//! `testutil` cargo feature — by downstream crates' property tests
//! (e.g. the PDR verdict-equivalence suite in `engines`), so the
//! random sequential-netlist distribution is defined exactly once.

use crate::graph::{Aig, AigLit};
use crate::seq::{AigSystem, Latch};
use rand::rngs::StdRng;
use rand::Rng;

/// Tuning knobs for [`random_system`].
#[derive(Clone, Copy, Debug)]
pub struct RandomSystemConfig {
    /// Maximum number of primary inputs (uniform in `0..=max_inputs`).
    pub max_inputs: usize,
    /// Maximum number of latches (uniform in `1..=max_latches`).
    pub max_latches: usize,
    /// Maximum number of environment constraints (uniform in
    /// `0..=max_constraints`).
    pub max_constraints: usize,
    /// Probability that a latch has a fixed reset value.
    pub init_prob: f64,
}

impl Default for RandomSystemConfig {
    fn default() -> RandomSystemConfig {
        RandomSystemConfig {
            max_inputs: 3,
            max_latches: 5,
            max_constraints: 0,
            init_prob: 0.8,
        }
    }
}

/// A random sequential netlist: latch/input CIs, random AND/OR/XOR
/// logic, random next-state, bad and constraint picks.
pub fn random_system(rng: &mut StdRng, cfg: &RandomSystemConfig) -> AigSystem {
    let mut aig = Aig::new();
    let num_inputs = rng.gen_range(0..=cfg.max_inputs);
    let num_latches = rng.gen_range(1..=cfg.max_latches);
    let inputs: Vec<AigLit> = (0..num_inputs).map(|_| aig.new_ci()).collect();
    let latch_outs: Vec<AigLit> = (0..num_latches).map(|_| aig.new_ci()).collect();
    let mut lits: Vec<AigLit> = inputs.iter().chain(&latch_outs).copied().collect();
    lits.push(AigLit::TRUE);
    for _ in 0..rng.gen_range(3..=30usize) {
        let a = lits[rng.gen_range(0..lits.len())];
        let b = lits[rng.gen_range(0..lits.len())];
        let a = if rng.gen_bool(0.5) { !a } else { a };
        let b = if rng.gen_bool(0.5) { !b } else { b };
        let n = match rng.gen_range(0..3) {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        lits.push(n);
    }
    let pick = |rng: &mut StdRng, lits: &[AigLit]| {
        let l = lits[rng.gen_range(0..lits.len())];
        if rng.gen_bool(0.5) {
            !l
        } else {
            l
        }
    };
    let latches: Vec<Latch> = latch_outs
        .iter()
        .enumerate()
        .map(|(i, &output)| Latch {
            output,
            next: pick(rng, &lits),
            init: if rng.gen_bool(cfg.init_prob) {
                Some(rng.gen_bool(0.5))
            } else {
                None
            },
            name: format!("l{i}"),
        })
        .collect();
    let bads: Vec<AigLit> = (0..rng.gen_range(1..=3usize))
        .map(|_| pick(rng, &lits))
        .collect();
    let constraints: Vec<AigLit> = (0..rng.gen_range(0..=cfg.max_constraints))
        .map(|_| pick(rng, &lits))
        .collect();
    AigSystem {
        aig,
        input_names: (0..num_inputs).map(|i| format!("i{i}")).collect(),
        inputs,
        latches,
        constraints,
        bad_names: (0..bads.len()).map(|i| format!("b{i}")).collect(),
        bads,
        name: "rand".into(),
    }
}
