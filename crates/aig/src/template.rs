//! Compile-once CNF transition template.
//!
//! Every engine in this workspace (BMC, k-induction, interpolation,
//! PDR, and the portfolio racing them) materializes the *same*
//! transition relation in a SAT solver, over and over: once per time
//! frame, once per PDR frame solver, once per interpolation partition.
//! Running Tseitin over the AIG cone each time costs a cone traversal,
//! a hash lookup per node and a fresh encoder allocation per frame.
//!
//! [`TransitionTemplate`] does the Tseitin work exactly once. Compiling
//! an [`AigSystem`] produces a flat clause image over *template-local*
//! variables together with the literal maps an engine needs:
//! latch-current, latch-next, input, constraint, per-bad and any-bad
//! literals. A time frame is then materialized by
//! [`instantiate`](TransitionTemplate::instantiate): the template's
//! variables are mapped onto a contiguous block of fresh solver
//! variables by **offset arithmetic** (no per-node hashing, no cone
//! walk) and the clause image is bulk-loaded behind a single
//! [`satb::Solver::reserve_clauses`] call.
//!
//! # Variable layout and frame chaining
//!
//! Template-local variables are ordered: latch current-state variables
//! `0..L` first, then input variables `L..L+I`, then internal Tseitin
//! variables (AND-node outputs, the constant-true variable, the any-bad
//! disjunction variable). Instantiation maps them in one of two modes:
//!
//! * [`instantiate`](TransitionTemplate::instantiate) allocates fresh
//!   solver variables for the whole block — template variable `v`
//!   becomes solver variable `base + v`. Used for frame 0 and for
//!   self-contained frame solvers (PDR).
//! * [`instantiate_bound`](TransitionTemplate::instantiate_bound) maps
//!   the `L` latch-current variables onto caller-supplied solver
//!   literals and offsets only the free variables. Chaining frame
//!   `k+1` onto frame `k` is therefore pure substitution — bind frame
//!   `k+1`'s latch-current variables to frame `k`'s
//!   [`FrameVars::latch_next`] literals — with no equality clauses and
//!   no duplicated cone encoding.
//!
//! # `Part` and tag preservation
//!
//! Every instantiation takes an interpolation partition
//! ([`satb::Part`]) and a caller tag, forwarded to
//! [`satb::Solver::add_clause_tagged`] for each emitted clause. The
//! interpolation engine instantiates frame 0 in `Part::A` and frames
//! `1..k` in `Part::B`, and sequence-interpolant users can tag each
//! frame with its index — exactly the labelling the per-frame
//! `FrameEncoder` path used to provide.
//!
//! Environment constraints are asserted (as unit clauses, in the same
//! part/tag) by every instantiation: all consumers assert them on every
//! materialized frame.
//!
//! # Query scoping (cone maps)
//!
//! Compilation also records the **structural cone** of every root —
//! per-latch next-state cones, per-bad cones, the constraint and
//! any-bad union cones — as template-local variable sets
//! ([`TransitionTemplate::latch_next_cone`] and friends). Because
//! instantiation is offset arithmetic, a frame maps a cone onto solver
//! variables for free, and [`FrameVars::extend_domain`] /
//! [`FrameVars::extend_domain_base`] assemble per-query decision
//! [`Domain`]s for [`satb::Solver::solve_with_domain`]: engines
//! restrict each SAT query's branching to exactly the variables its
//! cube, guards and constraints can observe. The cones are computed
//! once per design and survive [`preprocess`]
//! (eliminated variables leave the cones together with their clauses).
//!
//! [`preprocess`]: TransitionTemplate::preprocess
//!
//! # Example
//!
//! ```
//! use aig::{blast_system, TransitionTemplate};
//! use rtlir::{Sort, TransitionSystem};
//! use satb::{Part, SolveResult, Solver};
//!
//! // A 4-bit counter with a bad state at 3.
//! let mut ts = TransitionSystem::new("c");
//! let s = ts.add_state("count", Sort::Bv(4));
//! let sv = ts.pool_mut().var(s);
//! let one = ts.pool_mut().constv(4, 1);
//! let next = ts.pool_mut().add(sv, one);
//! let zero = ts.pool_mut().constv(4, 0);
//! ts.set_init(s, zero);
//! ts.set_next(s, next);
//! let three = ts.pool_mut().constv(4, 3);
//! let bad = ts.pool_mut().eq(sv, three);
//! ts.add_bad(bad, "count is 3");
//!
//! let sys = blast_system(&ts);
//! let tpl = TransitionTemplate::compile(&sys);
//!
//! // Unroll three frames: instantiate frame 0, then chain.
//! let mut solver = Solver::new();
//! let f0 = tpl.instantiate(&mut solver, Part::A, 0);
//! f0.assert_init(&sys, &mut solver);
//! let f1 = tpl.instantiate_bound(&mut solver, Part::A, 0, &f0.latch_next);
//! let f2 = tpl.instantiate_bound(&mut solver, Part::A, 0, &f1.latch_next);
//! // The counter reaches 3 at cycle 3, not earlier.
//! assert_eq!(solver.solve_with(&[f2.any_bad]), SolveResult::Unsat);
//! let f3 = tpl.instantiate_bound(&mut solver, Part::A, 0, &f2.latch_next);
//! assert_eq!(solver.solve_with(&[f3.any_bad]), SolveResult::Sat);
//! ```

use crate::graph::AigLit;
use crate::seq::AigSystem;
use satb::preproc::{PreprocConfig, PreprocStats, Preprocessor, ReconStack};
use satb::{Domain, Lit, Part, Solver, Var};

/// The solver literals of one materialized time frame.
///
/// All literals live in the target solver's variable space; see the
/// [module docs](self) for how they relate to the template.
#[derive(Clone, Debug)]
pub struct FrameVars {
    /// Current-state literal per latch (the bound literals when the
    /// frame was chained with
    /// [`instantiate_bound`](TransitionTemplate::instantiate_bound)).
    pub latch_cur: Vec<Lit>,
    /// Next-state function output per latch; bind the next frame's
    /// `latch_cur` to these to chain frames.
    pub latch_next: Vec<Lit>,
    /// Primary-input literal per input bit (for trace extraction).
    pub inputs: Vec<Lit>,
    /// Constraint literals (already asserted true by instantiation).
    pub constraints: Vec<Lit>,
    /// One literal per bad output.
    pub bads: Vec<Lit>,
    /// Literal equivalent to "some bad output fires in this frame".
    pub any_bad: Lit,
    /// First solver variable of this frame's fresh block (for mapping
    /// template-local cone variables; see [`FrameVars::extend_domain`]).
    first: usize,
    /// Template-local variables skipped by the mapping (the latch
    /// block when the frame was chained with `instantiate_bound`).
    skip: usize,
}

impl FrameVars {
    /// Asserts the reset values of `sys`'s initialized latches on this
    /// frame's current-state literals (unit clauses; uninitialized
    /// latches stay unconstrained). Call on frame 0 of an initialized
    /// chain or on a PDR frame-0 solver.
    pub fn assert_init(&self, sys: &AigSystem, solver: &mut Solver) {
        for (latch, &l) in sys.latches.iter().zip(&self.latch_cur) {
            if let Some(init) = latch.init {
                solver.add_clause(&[if init { l } else { !l }]);
            }
        }
    }

    /// The solver variable a template-local variable was mapped to in
    /// this frame (latch-current variables go through the binding, the
    /// rest is offset arithmetic — the same mapping instantiation
    /// used).
    fn solver_var(&self, tv: Var) -> Var {
        let v = tv.index();
        if v < self.latch_cur.len() {
            self.latch_cur[v].var()
        } else {
            Var::from_index(self.first + v - self.skip)
        }
    }

    /// Adds the solver image of a template-local cone — one of
    /// [`TransitionTemplate::latch_next_cone`],
    /// [`TransitionTemplate::bad_cone`],
    /// [`TransitionTemplate::constraint_cone`],
    /// [`TransitionTemplate::any_bad_cone`] — to a query [`Domain`].
    pub fn extend_domain(&self, dom: &mut Domain, cone: &[Var]) {
        for &v in cone {
            dom.insert(self.solver_var(v));
        }
    }

    /// Adds this frame's base query domain: every latch-current and
    /// input variable plus the constraint cone. This is the part every
    /// engine query needs regardless of its cube — frame lemmas and
    /// initial-state units range over latch-current variables, inputs
    /// feed every cone, and the constraint units are asserted
    /// unconditionally — so starting from it keeps
    /// [`satb::Solver::solve_with_domain`]'s `Sat` answers extendable
    /// (see the `satb::domain` module docs for the contract).
    pub fn extend_domain_base(&self, tpl: &TransitionTemplate, dom: &mut Domain) {
        for &l in &self.latch_cur {
            dom.insert(l.var());
        }
        for &l in &self.inputs {
            dom.insert(l.var());
        }
        self.extend_domain(dom, tpl.constraint_cone());
    }
}

/// A transition relation compiled to a frame-instantiable clause image.
///
/// Build one with [`compile`](TransitionTemplate::compile) (typically
/// right after [`blast_system`](crate::blast_system)) and share it —
/// it is immutable, and the portfolio shares one behind an `Arc`
/// across all member engines.
#[derive(Clone, Debug)]
pub struct TransitionTemplate {
    num_latches: usize,
    num_vars: usize,
    /// Flat clause image over template-local literals; clause `i` is
    /// `lits[ends[i-1]..ends[i]]` (with `ends[-1] == 0`). The image is
    /// pre-normalized (distinct variables per clause, no tautologies),
    /// so instantiation loads it through the solver's fast
    /// [`satb::Solver::add_clause_prenormalized`] path.
    lits: Vec<Lit>,
    ends: Vec<u32>,
    /// Clauses (same representation) referencing two or more
    /// latch-current variables. A *bound* instantiation can alias
    /// those onto equal or complementary solver literals, so they go
    /// through the normalizing add path; fresh instantiations (and
    /// single-latch clauses, which cannot self-alias) stay fast.
    latchy_lits: Vec<Lit>,
    latchy_ends: Vec<u32>,
    latch_next: Vec<Lit>,
    input_lits: Vec<Lit>,
    constraints: Vec<Lit>,
    bad_lits: Vec<Lit>,
    any_bad: Lit,
    /// Per-root structural cones over template-local variables, for
    /// per-query decision [`Domain`]s (see [`FrameVars::extend_domain`]
    /// and the `satb::domain` module docs). CSR layout: entry `i` of
    /// `0..L` is latch `i`'s next-state cone, entry `L + j` is bad
    /// `j`'s cone; each cone is fanin-closed and contains its root's
    /// variable.
    cone_vars: Vec<Var>,
    cone_ends: Vec<u32>,
    /// Union cone of every environment constraint (part of every
    /// query's base domain — the constraint units are asserted on
    /// every frame).
    constraint_cone: Vec<Var>,
    /// Union cone of every bad output plus the any-bad variable.
    any_bad_cone: Vec<Var>,
}

/// Template-local Tseitin emitter used by
/// [`TransitionTemplate::compile`].
struct Builder {
    /// AIG node -> template literal.
    map: Vec<Option<Lit>>,
    num_latches: usize,
    next_var: u32,
    lits: Vec<Lit>,
    ends: Vec<u32>,
    latchy_lits: Vec<Lit>,
    latchy_ends: Vec<u32>,
    const_true: Option<Lit>,
}

impl Builder {
    fn fresh(&mut self) -> Lit {
        let l = Lit::pos(Var::from_index(self.next_var as usize));
        self.next_var += 1;
        l
    }

    fn clause(&mut self, lits: &[Lit]) {
        let latch_vars = lits
            .iter()
            .filter(|l| l.var().index() < self.num_latches)
            .count();
        if latch_vars >= 2 {
            self.latchy_lits.extend_from_slice(lits);
            self.latchy_ends.push(self.latchy_lits.len() as u32);
        } else {
            self.lits.extend_from_slice(lits);
            self.ends.push(self.lits.len() as u32);
        }
    }

    fn true_lit(&mut self) -> Lit {
        match self.const_true {
            Some(l) => l,
            None => {
                let l = self.fresh();
                self.clause(&[l]);
                self.const_true = Some(l);
                l
            }
        }
    }

    fn leaf(&mut self, l: AigLit) -> Lit {
        if l.is_const() {
            let t = self.true_lit();
            return if l == AigLit::TRUE { t } else { !t };
        }
        let base = match self.map[l.node() as usize] {
            Some(b) => b,
            None => {
                // A CI that is neither a registered input nor a latch
                // output: a free input. It gets a free (internal-range)
                // template variable, so every instantiation mints a
                // fresh unconstrained solver variable for it — the
                // same semantics the per-frame `FrameEncoder` had.
                let b = self.fresh();
                self.map[l.node() as usize] = Some(b);
                b
            }
        };
        if l.is_compl() {
            !base
        } else {
            base
        }
    }
}

impl TransitionTemplate {
    /// Compiles the full transition relation of `sys` — next-state,
    /// constraint and bad cones, plus the any-bad disjunction — into a
    /// template. Runs Tseitin exactly once, over the union cone.
    pub fn compile(sys: &AigSystem) -> TransitionTemplate {
        let num_latches = sys.latches.len();
        let num_inputs = sys.inputs.len();
        let mut map: Vec<Option<Lit>> = vec![None; sys.aig.num_nodes()];
        for (i, latch) in sys.latches.iter().enumerate() {
            debug_assert!(!latch.output.is_compl(), "latch outputs are plain CIs");
            map[latch.output.node() as usize] = Some(Lit::pos(Var::from_index(i)));
        }
        let mut input_lits = Vec::with_capacity(num_inputs);
        for (i, &inp) in sys.inputs.iter().enumerate() {
            debug_assert!(!inp.is_compl(), "inputs are plain CIs");
            let l = Lit::pos(Var::from_index(num_latches + i));
            map[inp.node() as usize] = Some(l);
            input_lits.push(l);
        }
        let mut b = Builder {
            map,
            num_latches,
            next_var: (num_latches + num_inputs) as u32,
            lits: Vec::new(),
            ends: Vec::new(),
            latchy_lits: Vec::new(),
            latchy_ends: Vec::new(),
            const_true: None,
        };

        // One topological walk over the union cone of every root.
        let mut roots: Vec<AigLit> = Vec::with_capacity(num_latches + sys.bads.len() + 1);
        roots.extend(sys.latches.iter().map(|l| l.next));
        roots.extend(sys.constraints.iter().copied());
        roots.extend(sys.bads.iter().copied());
        for n in sys.aig.cone(&roots) {
            let (fa, fb) = sys
                .aig
                .and_fanins_of_node(n)
                .expect("cone() yields AND nodes only");
            let la = b.leaf(fa);
            let lb = b.leaf(fb);
            let ln = b.fresh();
            // n <-> fa & fb
            b.clause(&[!ln, la]);
            b.clause(&[!ln, lb]);
            b.clause(&[!la, !lb, ln]);
            b.map[n as usize] = Some(ln);
        }

        let latch_next: Vec<Lit> = sys.latches.iter().map(|l| b.leaf(l.next)).collect();
        let constraints: Vec<Lit> = sys.constraints.iter().map(|&c| b.leaf(c)).collect();
        let bad_lits: Vec<Lit> = sys.bads.iter().map(|&l| b.leaf(l)).collect();
        let any_bad = match bad_lits.len() {
            0 => !b.true_lit(),
            1 => bad_lits[0],
            _ => {
                // v <-> b0 | b1 | ... | bn. The image must stay
                // normalized: dedupe repeated bad literals, and if two
                // bads are complementary the disjunction is constant
                // true, so force v instead of emitting a tautology.
                let v = b.fresh();
                let mut uniq = bad_lits.clone();
                uniq.sort_unstable();
                uniq.dedup();
                let taut = uniq.windows(2).any(|w| w[0].var() == w[1].var());
                if taut {
                    b.clause(&[v]);
                } else {
                    let mut cl = vec![!v];
                    cl.extend(&uniq);
                    b.clause(&cl);
                    for &bl in &uniq {
                        b.clause(&[!bl, v]);
                    }
                }
                v
            }
        };

        // Structural cones for per-query domains: one stamped DFS over
        // the AIG per root (or root group), collecting the template
        // variable of every node in the transitive fanin. Constant
        // roots/fanins contribute the constant-true variable (their
        // defining unit clause must be in any domain that sees them).
        let mut visited = vec![0u32; sys.aig.num_nodes()];
        let mut gen = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        let mut cone_of = |roots: &[AigLit], out: &mut Vec<Var>| {
            gen += 1;
            let mut saw_const = false;
            for &r in roots {
                if r.is_const() {
                    saw_const = true;
                } else {
                    stack.push(r.node());
                }
            }
            while let Some(n) = stack.pop() {
                let ni = n as usize;
                if visited[ni] == gen {
                    continue;
                }
                visited[ni] = gen;
                out.push(b.map[ni].expect("cone nodes are mapped").var());
                if let Some((fa, fb)) = sys.aig.and_fanins_of_node(n) {
                    for f in [fa, fb] {
                        if f.is_const() {
                            saw_const = true;
                        } else {
                            stack.push(f.node());
                        }
                    }
                }
            }
            if saw_const {
                out.push(b.const_true.expect("const leaf minted true_lit").var());
            }
        };
        let mut cone_vars: Vec<Var> = Vec::new();
        let mut cone_ends: Vec<u32> = Vec::with_capacity(num_latches + sys.bads.len());
        for latch in &sys.latches {
            cone_of(&[latch.next], &mut cone_vars);
            cone_ends.push(cone_vars.len() as u32);
        }
        for &bad in &sys.bads {
            cone_of(&[bad], &mut cone_vars);
            cone_ends.push(cone_vars.len() as u32);
        }
        let mut constraint_cone: Vec<Var> = Vec::new();
        cone_of(&sys.constraints, &mut constraint_cone);
        let mut any_bad_cone: Vec<Var> = Vec::new();
        cone_of(&sys.bads, &mut any_bad_cone);
        if !any_bad_cone.contains(&any_bad.var()) {
            // The disjunction/constant variable sits outside the AIG.
            any_bad_cone.push(any_bad.var());
        }

        TransitionTemplate {
            num_latches,
            num_vars: b.next_var as usize,
            lits: b.lits,
            ends: b.ends,
            latchy_lits: b.latchy_lits,
            latchy_ends: b.latchy_ends,
            latch_next,
            input_lits,
            constraints,
            bad_lits,
            any_bad,
            cone_vars,
            cone_ends,
            constraint_cone,
            any_bad_cone,
        }
    }

    /// The fanin-closed template-local cone of latch `i`'s next-state
    /// function (contains [`latch-next`](FrameVars::latch_next) `i`'s
    /// variable). Map into a frame's solver variables with
    /// [`FrameVars::extend_domain`].
    pub fn latch_next_cone(&self, i: usize) -> &[Var] {
        self.cone(i)
    }

    /// The fanin-closed template-local cone of bad output `i`.
    pub fn bad_cone(&self, i: usize) -> &[Var] {
        self.cone(self.num_latches + i)
    }

    /// The union cone of every environment constraint.
    pub fn constraint_cone(&self) -> &[Var] {
        &self.constraint_cone
    }

    /// The union cone of every bad output, any-bad variable included.
    pub fn any_bad_cone(&self) -> &[Var] {
        &self.any_bad_cone
    }

    fn cone(&self, entry: usize) -> &[Var] {
        let start = if entry == 0 {
            0
        } else {
            self.cone_ends[entry - 1] as usize
        };
        &self.cone_vars[start..self.cone_ends[entry] as usize]
    }

    /// Number of latches of the compiled system.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Template-local variables per frame (latches + inputs +
    /// internal Tseitin variables).
    pub fn num_frame_vars(&self) -> usize {
        self.num_vars
    }

    /// Clauses added per instantiation (clause image plus constraint
    /// unit assertions), before solver-side simplification.
    pub fn num_frame_clauses(&self) -> usize {
        self.ends.len() + self.latchy_ends.len() + self.constraints.len()
    }

    /// Literals in the clause image (for arena pre-sizing).
    pub fn num_frame_lits(&self) -> usize {
        self.lits.len() + self.latchy_lits.len() + self.constraints.len()
    }

    /// Runs SatELite-style CNF preprocessing ([`satb::preproc`]) once
    /// over the compiled clause image, with the default configuration.
    /// Every frame instantiated from the returned template — in every
    /// engine, every portfolio seat — inherits the simplification for
    /// free: the cost is paid once per design, the savings once per
    /// frame.
    ///
    /// # Freeze set and soundness
    ///
    /// The preprocessor is handed the whole engine interface as its
    /// freeze set: latch-current and latch-next variables, inputs,
    /// constraint/bad/any-bad literals. Those are exactly the
    /// variables engines read from models, assume, bind across frames
    /// or constrain with extra clauses (PDR's blocking clauses and
    /// initial-state units range over latch-current variables; its
    /// activation guards are fresh solver-side variables that never
    /// exist in the template, so its activation/assumption footprint
    /// is frozen by construction). Internal Tseitin variables are
    /// existentially projected out where the SatELite bound allows, so
    /// the simplified image is equivalent to the raw one over every
    /// frozen variable — every engine verdict, interpolant and trace
    /// is preserved. Eliminated variables can be re-derived from any
    /// model through [`PreprocessedTemplate::recon`].
    ///
    /// The per-frame constraint unit assertions participate in the
    /// simplification (they hold on every materialized frame) and are
    /// stripped from the resulting image again, since
    /// [`instantiate`](TransitionTemplate::instantiate) re-asserts
    /// them.
    ///
    /// If preprocessing refutes the image outright (possible only with
    /// contradictory environment constraints), the raw template is
    /// returned unchanged — every frame is unsatisfiable either way.
    pub fn preprocess(&self) -> PreprocessedTemplate {
        self.preprocess_with(&PreprocConfig::default())
    }

    /// [`preprocess`](TransitionTemplate::preprocess) with an explicit
    /// configuration.
    pub fn preprocess_with(&self, cfg: &PreprocConfig) -> PreprocessedTemplate {
        let num_frozen = self.num_latches + self.input_lits.len();
        let mut pre = Preprocessor::new(self.num_vars);
        for v in 0..num_frozen {
            pre.freeze(Var::from_index(v));
        }
        for &l in self.interface_lits() {
            pre.freeze(l.var());
        }
        let mut start = 0usize;
        for &end in &self.ends {
            pre.add_clause(&self.lits[start..end as usize], Part::A, 0);
            start = end as usize;
        }
        start = 0;
        for &end in &self.latchy_ends {
            pre.add_clause(&self.latchy_lits[start..end as usize], Part::A, 0);
            start = end as usize;
        }
        // The constraints are asserted as units on every materialized
        // frame; give the preprocessor that knowledge.
        let mut units: Vec<Lit> = self.constraints.clone();
        units.sort_unstable();
        units.dedup();
        for &c in &units {
            pre.add_clause(&[c], Part::A, 0);
        }
        let res = pre.run(cfg);
        if res.unsat {
            // Contradictory constraints: frames are unsatisfiable with
            // or without simplification; keep the raw image. The
            // returned stats are zeroed — whatever the run did before
            // deriving the empty clause was discarded with it.
            return PreprocessedTemplate {
                template: self.clone(),
                stats: PreprocStats::default(),
                recon: TemplateRecon {
                    raw_vars: self.num_vars,
                    map: (0..self.num_vars)
                        .map(|v| Some(Var::from_index(v)))
                        .collect(),
                    stack: ReconStack::default(),
                },
            };
        }

        // Renumber: the frozen latch/input prefix keeps its indices
        // (the template layout contract), surviving internals compact
        // upward. Unfrozen variables with no remaining occurrence are
        // dropped entirely.
        let mut used = vec![false; self.num_vars];
        for c in &res.clauses {
            for l in &c.lits {
                used[l.var().index()] = true;
            }
        }
        for &l in self.interface_lits() {
            used[l.var().index()] = true;
        }
        let mut map: Vec<Option<Var>> = vec![None; self.num_vars];
        for (v, m) in map.iter_mut().enumerate().take(num_frozen) {
            *m = Some(Var::from_index(v));
        }
        let mut next = num_frozen;
        for v in num_frozen..self.num_vars {
            if !res.eliminated[v] && used[v] {
                map[v] = Some(Var::from_index(next));
                next += 1;
            }
        }
        let map_lit = |l: Lit| {
            let v = map[l.var().index()].expect("interface and survivors are mapped");
            Lit::new(v, l.is_positive())
        };

        let mut lits: Vec<Lit> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut latchy_lits: Vec<Lit> = Vec::new();
        let mut latchy_ends: Vec<u32> = Vec::new();
        for c in &res.clauses {
            // Constraint units are re-asserted by every instantiation;
            // keep the image free of the duplicate.
            if c.lits.len() == 1 && units.binary_search(&c.lits[0]).is_ok() {
                continue;
            }
            let mapped: Vec<Lit> = c.lits.iter().map(|&l| map_lit(l)).collect();
            let latch_vars = mapped
                .iter()
                .filter(|l| l.var().index() < self.num_latches)
                .count();
            if latch_vars >= 2 {
                latchy_lits.extend_from_slice(&mapped);
                latchy_ends.push(latchy_lits.len() as u32);
            } else {
                lits.extend_from_slice(&mapped);
                ends.push(lits.len() as u32);
            }
        }

        // Cones follow the renumbering; eliminated/dropped variables
        // simply leave the cone (their clauses left the image — a
        // domain never needs to decide them).
        let map_cone =
            |cone: &[Var]| -> Vec<Var> { cone.iter().filter_map(|v| map[v.index()]).collect() };
        let mut cone_vars: Vec<Var> = Vec::new();
        let mut cone_ends: Vec<u32> = Vec::with_capacity(self.cone_ends.len());
        for entry in 0..self.cone_ends.len() {
            cone_vars.extend(map_cone(self.cone(entry)));
            cone_ends.push(cone_vars.len() as u32);
        }

        let template = TransitionTemplate {
            num_latches: self.num_latches,
            num_vars: next,
            lits,
            ends,
            latchy_lits,
            latchy_ends,
            latch_next: self.latch_next.iter().map(|&l| map_lit(l)).collect(),
            input_lits: self.input_lits.iter().map(|&l| map_lit(l)).collect(),
            constraints: self.constraints.iter().map(|&l| map_lit(l)).collect(),
            bad_lits: self.bad_lits.iter().map(|&l| map_lit(l)).collect(),
            any_bad: map_lit(self.any_bad),
            cone_vars,
            cone_ends,
            constraint_cone: map_cone(&self.constraint_cone),
            any_bad_cone: map_cone(&self.any_bad_cone),
        };
        PreprocessedTemplate {
            template,
            stats: res.stats,
            recon: TemplateRecon {
                raw_vars: self.num_vars,
                map,
                stack: res.recon,
            },
        }
    }

    /// The literals engines read, assume or bind: the template's
    /// frozen interface (latch-next, constraints, bads, any-bad; the
    /// latch-current/input prefix is positional and handled
    /// separately).
    fn interface_lits(&self) -> impl Iterator<Item = &Lit> {
        self.latch_next
            .iter()
            .chain(&self.constraints)
            .chain(&self.bad_lits)
            .chain(std::iter::once(&self.any_bad))
    }

    /// Structural validation of the template's internal contract, for
    /// debug assertions and property tests. Checks:
    ///
    /// * the flat clause images are well-formed (`ends` strictly
    ///   increasing, covering `lits` exactly) and every literal's
    ///   variable lies below [`num_frame_vars`];
    /// * every image clause is pre-normalized — nonempty, distinct
    ///   variables, no tautology — as required by the
    ///   [`satb::Solver::add_clause_prenormalized`] fast path;
    /// * the latchy split: plain-image clauses reference at most one
    ///   latch-current variable, latchy-image clauses at least two;
    /// * the interface maps are complete and in range: one latch-next
    ///   literal per latch, positional positive latch-current and
    ///   input literals (`0..L` and `L..L+I` — the layout contract
    ///   preprocessing must preserve), and constraint / bad / any-bad
    ///   literals below the variable count.
    ///
    /// Returns the first violation as a human-readable message.
    ///
    /// [`num_frame_vars`]: TransitionTemplate::num_frame_vars
    pub fn lint(&self) -> Result<(), String> {
        let check_image = |lits: &[Lit], ends: &[u32], latchy: bool, what: &str| {
            let mut start = 0usize;
            for (ci, &end) in ends.iter().enumerate() {
                let end = end as usize;
                if end <= start || end > lits.len() {
                    return Err(format!("{what} clause #{ci}: bad extent {start}..{end}"));
                }
                let clause = &lits[start..end];
                let mut vars: Vec<usize> = clause.iter().map(|l| l.var().index()).collect();
                vars.sort_unstable();
                if vars.windows(2).any(|w| w[0] == w[1]) {
                    return Err(format!(
                        "{what} clause #{ci}: repeated variable (not pre-normalized)"
                    ));
                }
                if vars.last().is_some_and(|&v| v >= self.num_vars) {
                    return Err(format!("{what} clause #{ci}: variable out of range"));
                }
                let latch_vars = vars.iter().filter(|&&v| v < self.num_latches).count();
                if latchy && latch_vars < 2 {
                    return Err(format!(
                        "{what} clause #{ci}: only {latch_vars} latch vars in latchy image"
                    ));
                }
                if !latchy && latch_vars >= 2 {
                    return Err(format!(
                        "{what} clause #{ci}: {latch_vars} latch vars escaped the latchy split"
                    ));
                }
                start = end;
            }
            if start != lits.len() {
                return Err(format!("{what}: {} trailing literals", lits.len() - start));
            }
            Ok(())
        };
        check_image(&self.lits, &self.ends, false, "plain image")?;
        check_image(&self.latchy_lits, &self.latchy_ends, true, "latchy image")?;
        if self.latch_next.len() != self.num_latches {
            return Err(format!(
                "latch-next map has {} entries for {} latches",
                self.latch_next.len(),
                self.num_latches
            ));
        }
        if self.num_vars < self.num_latches + self.input_lits.len() {
            return Err(format!(
                "variable count {} below the latch/input prefix {}",
                self.num_vars,
                self.num_latches + self.input_lits.len()
            ));
        }
        for (i, &l) in self.input_lits.iter().enumerate() {
            let want = Lit::pos(Var::from_index(self.num_latches + i));
            if l != want {
                return Err(format!("input {i}: non-positional literal {l:?}"));
            }
        }
        for (what, lits) in [
            ("latch-next", &self.latch_next),
            ("constraint", &self.constraints),
            ("bad", &self.bad_lits),
        ] {
            if let Some(l) = lits.iter().find(|l| l.var().index() >= self.num_vars) {
                return Err(format!("{what} literal {l:?} out of range"));
            }
        }
        if self.any_bad.var().index() >= self.num_vars {
            return Err(format!("any-bad literal {:?} out of range", self.any_bad));
        }
        if self.cone_ends.len() != self.num_latches + self.bad_lits.len() {
            return Err(format!(
                "cone map has {} entries for {} latches + {} bads",
                self.cone_ends.len(),
                self.num_latches,
                self.bad_lits.len()
            ));
        }
        let mut start = 0u32;
        for (i, &end) in self.cone_ends.iter().enumerate() {
            if end < start || end as usize > self.cone_vars.len() {
                return Err(format!("cone #{i}: bad extent {start}..{end}"));
            }
            start = end;
        }
        if start as usize != self.cone_vars.len() {
            return Err("cone map: trailing variables".into());
        }
        for (what, cone) in [
            ("cone map", &self.cone_vars),
            ("constraint cone", &self.constraint_cone),
            ("any-bad cone", &self.any_bad_cone),
        ] {
            if let Some(v) = cone.iter().find(|v| v.index() >= self.num_vars) {
                return Err(format!("{what}: variable {v:?} out of range"));
            }
        }
        for i in 0..self.num_latches {
            if !self.latch_next_cone(i).contains(&self.latch_next[i].var()) {
                return Err(format!("latch-next cone {i} misses its root variable"));
            }
        }
        for i in 0..self.bad_lits.len() {
            if !self.bad_cone(i).contains(&self.bad_lits[i].var()) {
                return Err(format!("bad cone {i} misses its root variable"));
            }
        }
        if !self.any_bad_cone.contains(&self.any_bad.var()) {
            return Err("any-bad cone misses the any-bad variable".into());
        }
        Ok(())
    }

    /// Materializes one frame with fresh solver variables for the
    /// whole block (latches included). Clauses carry `part`/`tag`.
    pub fn instantiate(&self, solver: &mut Solver, part: Part, tag: u32) -> FrameVars {
        self.inst(solver, part, tag, None)
    }

    /// Materializes one frame whose latch-current variables are the
    /// given solver literals (e.g. the previous frame's
    /// [`FrameVars::latch_next`], or pre-created interface variables
    /// for interpolation). Only the free variables are allocated.
    ///
    /// # Panics
    ///
    /// Panics if `latch_cur.len()` differs from the latch count.
    pub fn instantiate_bound(
        &self,
        solver: &mut Solver,
        part: Part,
        tag: u32,
        latch_cur: &[Lit],
    ) -> FrameVars {
        assert_eq!(latch_cur.len(), self.num_latches, "latch binding width");
        self.inst(solver, part, tag, Some(latch_cur))
    }

    fn inst(&self, solver: &mut Solver, part: Part, tag: u32, bound: Option<&[Lit]>) -> FrameVars {
        let skip = if bound.is_some() { self.num_latches } else { 0 };
        let first = solver.new_vars(self.num_vars - skip).index();
        let map = |l: Lit| -> Lit {
            let v = l.var().index();
            match bound {
                Some(b) if v < self.num_latches => {
                    if l.is_positive() {
                        b[v]
                    } else {
                        !b[v]
                    }
                }
                _ => Lit::new(Var::from_index(first + v - skip), l.is_positive()),
            }
        };

        // Bulk load: one arena reservation, then the flat image over
        // the fast pre-normalized path. Clauses with two or more
        // latch-current variables can alias under a binding and take
        // the normalizing path instead; a fresh instantiation maps
        // variables injectively, so everything stays fast.
        solver.reserve_clauses(self.num_frame_clauses(), self.num_frame_lits());
        let mut buf: Vec<Lit> = Vec::with_capacity(8);
        let mut start = 0usize;
        for &end in &self.ends {
            buf.clear();
            buf.extend(self.lits[start..end as usize].iter().map(|&l| map(l)));
            solver.add_clause_prenormalized(&buf, part, tag);
            start = end as usize;
        }
        start = 0;
        for &end in &self.latchy_ends {
            buf.clear();
            buf.extend(
                self.latchy_lits[start..end as usize]
                    .iter()
                    .map(|&l| map(l)),
            );
            if bound.is_some() {
                solver.add_clause_tagged(&buf, part, tag);
            } else {
                solver.add_clause_prenormalized(&buf, part, tag);
            }
            start = end as usize;
        }
        for &c in &self.constraints {
            solver.add_clause_prenormalized(&[map(c)], part, tag);
        }

        FrameVars {
            latch_cur: match bound {
                Some(b) => b.to_vec(),
                None => (0..self.num_latches)
                    .map(|i| Lit::pos(Var::from_index(first + i)))
                    .collect(),
            },
            latch_next: self.latch_next.iter().map(|&l| map(l)).collect(),
            inputs: self.input_lits.iter().map(|&l| map(l)).collect(),
            constraints: self.constraints.iter().map(|&l| map(l)).collect(),
            bads: self.bad_lits.iter().map(|&l| map(l)).collect(),
            any_bad: map(self.any_bad),
            first,
            skip,
        }
    }
}

/// A [`TransitionTemplate`] after SatELite-style preprocessing,
/// bundled with the run's counters and the model-reconstruction data
/// for the eliminated variables. See
/// [`TransitionTemplate::preprocess`].
#[derive(Clone, Debug)]
pub struct PreprocessedTemplate {
    /// The simplified template; a drop-in replacement for the raw one.
    pub template: TransitionTemplate,
    /// What preprocessing did (variables eliminated, clauses subsumed,
    /// literals strengthened away).
    pub stats: PreprocStats,
    /// Maps models of a simplified frame back onto the raw template's
    /// variable space.
    pub recon: TemplateRecon,
}

/// Model reconstruction for a preprocessed template: raw template
/// variables are either renumbered survivors or eliminated variables
/// whose values are re-derived from the saved-clause stack.
#[derive(Clone, Debug)]
pub struct TemplateRecon {
    raw_vars: usize,
    /// Raw template variable → simplified template variable (`None`
    /// for eliminated or dropped variables).
    map: Vec<Option<Var>>,
    stack: ReconStack,
}

impl TemplateRecon {
    /// Variable count of the raw template.
    pub fn raw_num_vars(&self) -> usize {
        self.raw_vars
    }

    /// The simplified-template variable a raw variable survived as,
    /// `None` if it was eliminated or dropped.
    pub fn forward(&self, raw: Var) -> Option<Var> {
        self.map[raw.index()]
    }

    /// Extends a model of one simplified frame (`new_vals`, indexed by
    /// simplified template-local variable) to the raw template's
    /// variable space: survivors copy their value, eliminated
    /// variables are assigned from their saved clauses. The result
    /// satisfies every raw-image clause whenever `new_vals` satisfies
    /// the simplified image — this is what keeps `Unsafe` traces and
    /// PDR's re-simulation genuine.
    pub fn extend(&self, new_vals: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; self.raw_vars];
        for (old, m) in self.map.iter().enumerate() {
            if let Some(nv) = m {
                vals[old] = new_vals[nv.index()];
            }
        }
        self.stack.extend(&mut vals);
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::FrameEncoder;
    use crate::graph::Aig;
    use crate::seq::Latch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use satb::SolveResult;

    /// The shared random sequential netlist (see [`crate::testutil`]),
    /// with constraints enabled so `Part`/constraint handling is
    /// exercised.
    fn random_system(rng: &mut StdRng) -> AigSystem {
        crate::testutil::random_system(
            rng,
            &crate::testutil::RandomSystemConfig {
                max_constraints: 1,
                init_prob: 0.7,
                ..Default::default()
            },
        )
    }

    /// The reference unrolling of [`encoder_chain`]: per-frame literal
    /// maps over its solver's variable space.
    struct EncoderChain {
        solver: Solver,
        /// Latch-current literals per frame.
        latches: Vec<Vec<Lit>>,
        /// Per-bad literals per frame.
        bads: Vec<Vec<Lit>>,
        /// The any-bad literal per frame.
        any_bads: Vec<Lit>,
    }

    /// The pre-template unrolling: one `FrameEncoder` per frame, next
    /// cones re-encoded, constraints asserted, per-bad and any-bad
    /// cones encoded on demand.
    fn encoder_chain(sys: &AigSystem, depth: usize, initialized: bool) -> EncoderChain {
        let mut aig = sys.aig.clone();
        let bads = sys.bads.clone();
        let any_bad = aig.or_all(&bads);
        let mut solver = Solver::new();
        let mut encs: Vec<FrameEncoder> = Vec::new();
        let mut latch_lits: Vec<Vec<Lit>> = Vec::new();
        let mut enc0 = FrameEncoder::new();
        let mut lits0 = Vec::new();
        for latch in &sys.latches {
            let l = Lit::pos(solver.new_var());
            enc0.bind(latch.output, l);
            lits0.push(l);
            if initialized {
                if let Some(init) = latch.init {
                    solver.add_clause(&[if init { l } else { !l }]);
                }
            }
        }
        encs.push(enc0);
        latch_lits.push(lits0);
        for f in 0..=depth {
            for &c in &sys.constraints {
                let cl = encs[f].encode(&aig, &mut solver, c, Part::A);
                solver.add_clause(&[cl]);
            }
            if f < depth {
                let mut next_lits = Vec::new();
                for latch in &sys.latches {
                    next_lits.push(encs[f].encode(&aig, &mut solver, latch.next, Part::A));
                }
                let mut enc = FrameEncoder::new();
                for (latch, &l) in sys.latches.iter().zip(&next_lits) {
                    enc.bind(latch.output, l);
                }
                encs.push(enc);
                latch_lits.push(next_lits);
            }
        }
        let mut bad_lits = Vec::new();
        let mut any_bads = Vec::new();
        for f in 0..=depth {
            bad_lits.push(
                bads.iter()
                    .map(|&b| encs[f].encode(&aig, &mut solver, b, Part::A))
                    .collect::<Vec<Lit>>(),
            );
            any_bads.push(encs[f].encode(&aig, &mut solver, any_bad, Part::A));
        }
        EncoderChain {
            solver,
            latches: latch_lits,
            bads: bad_lits,
            any_bads,
        }
    }

    fn template_chain(
        sys: &AigSystem,
        tpl: &TransitionTemplate,
        depth: usize,
        initialized: bool,
    ) -> (Solver, Vec<FrameVars>) {
        let mut solver = Solver::new();
        let mut frames = Vec::new();
        let f0 = tpl.instantiate(&mut solver, Part::A, 0);
        if initialized {
            f0.assert_init(sys, &mut solver);
        }
        frames.push(f0);
        for _ in 0..depth {
            let prev = frames.last().expect("frame 0 exists");
            let next = tpl.instantiate_bound(&mut solver, Part::A, 0, &prev.latch_next.clone());
            frames.push(next);
        }
        (solver, frames)
    }

    /// Template-instantiated frames must be CNF-equivalent to
    /// `FrameEncoder`-encoded frames: the same verdict for every
    /// random assumption set over frame literals.
    #[test]
    fn template_frames_equivalent_to_encoder_frames() {
        let mut rng = StdRng::seed_from_u64(2016);
        for round in 0..40 {
            let sys = random_system(&mut rng);
            let tpl = TransitionTemplate::compile(&sys);
            tpl.lint().expect("compiled template passes lint");
            let depth = rng.gen_range(0..=3usize);
            let initialized = rng.gen_bool(0.5);
            let mut ec = encoder_chain(&sys, depth, initialized);
            let (es, e_latches, e_bads, e_any) =
                (&mut ec.solver, &ec.latches, &ec.bads, &ec.any_bads);
            let (mut ts_, frames) = template_chain(&sys, &tpl, depth, initialized);
            for _query in 0..8 {
                // Random assumptions: a bad (or any-bad) at a random
                // frame, plus random latch forcings.
                let f = rng.gen_range(0..=depth);
                let mut ea: Vec<Lit> = Vec::new();
                let mut ta: Vec<Lit> = Vec::new();
                if rng.gen_bool(0.5) {
                    let bi = rng.gen_range(0..sys.bads.len());
                    ea.push(e_bads[f][bi]);
                    ta.push(frames[f].bads[bi]);
                } else {
                    ea.push(e_any[f]);
                    ta.push(frames[f].any_bad);
                }
                for _ in 0..rng.gen_range(0..=3usize) {
                    let ff = rng.gen_range(0..=depth);
                    let li = rng.gen_range(0..sys.latches.len());
                    let pos = rng.gen_bool(0.5);
                    let el = e_latches[ff][li];
                    let tl = frames[ff].latch_cur[li];
                    ea.push(if pos { el } else { !el });
                    ta.push(if pos { tl } else { !tl });
                }
                let re = es.solve_with(&ea);
                let rt = ts_.solve_with(&ta);
                assert_eq!(
                    re, rt,
                    "round {round} frame {f}: encoder {re:?} template {rt:?}"
                );
            }
        }
    }

    /// Chained template frames agree with concrete simulation: forcing
    /// the inputs of every frame must force the latch values of every
    /// later frame to the simulated trajectory.
    #[test]
    fn template_chain_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(7);
        for _round in 0..30 {
            let sys = random_system(&mut rng);
            if !sys.constraints.is_empty() {
                continue; // constraints may make the chain UNSAT
            }
            let tpl = TransitionTemplate::compile(&sys);
            let depth = rng.gen_range(1..=3usize);
            let (mut solver, frames) = template_chain(&sys, &tpl, depth, true);
            // Force every frame's inputs and frame 0's full state.
            let mut assumptions = Vec::new();
            let mut state: Vec<bool> = sys.initial_state();
            for (i, &b) in state.iter().enumerate() {
                let l = frames[0].latch_cur[i];
                assumptions.push(if b { l } else { !l });
            }
            let mut input_vals = Vec::new();
            for frame in frames.iter().take(depth + 1) {
                let iv: Vec<bool> = (0..sys.inputs.len()).map(|_| rng.gen_bool(0.5)).collect();
                for (i, &b) in iv.iter().enumerate() {
                    let l = frame.inputs[i];
                    assumptions.push(if b { l } else { !l });
                }
                input_vals.push(iv);
            }
            assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
            for f in 0..=depth {
                let bads = sys.bads_in(&state, &input_vals[f]);
                for (bi, &want) in bads.iter().enumerate() {
                    assert_eq!(
                        solver.value(frames[f].bads[bi]),
                        Some(want),
                        "bad {bi} at frame {f}"
                    );
                }
                assert_eq!(
                    solver.value(frames[f].any_bad),
                    Some(bads.iter().any(|&b| b)),
                    "any-bad at frame {f}"
                );
                for (i, &want) in state.iter().enumerate() {
                    assert_eq!(
                        solver.value(frames[f].latch_cur[i]),
                        Some(want),
                        "latch {i} at frame {f}"
                    );
                }
                state = sys.step(&state, &input_vals[f]);
            }
        }
    }

    /// Part labels survive instantiation: an A-frame/B-frame split
    /// refuted with proof logging yields an interpolant.
    #[test]
    fn parts_preserved_for_interpolation() {
        // Latches a, b (both init 1), next = a & b for both; bad = !a.
        // From (1,1) the state stays (1,1), so "bad at frame 1" is
        // refutable — A holds frame 0, B holds the bound frame 1.
        let mut aig = Aig::new();
        let a = aig.new_ci();
        let b = aig.new_ci();
        let ab = aig.and(a, b);
        let mk = |output: AigLit, name: &str| Latch {
            output,
            next: ab,
            init: Some(true),
            name: name.into(),
        };
        let sys = AigSystem {
            aig,
            inputs: vec![],
            input_names: vec![],
            latches: vec![mk(a, "a"), mk(b, "b")],
            constraints: vec![],
            bads: vec![!a],
            bad_names: vec!["a dropped".into()],
            name: "hold".into(),
        };
        let tpl = TransitionTemplate::compile(&sys);
        let mut solver = Solver::with_proof();
        let f0 = tpl.instantiate(&mut solver, Part::A, 0);
        for &l in &f0.latch_cur {
            solver.add_clause_in(&[l], Part::A); // init: a = b = 1
        }
        let f1 = tpl.instantiate_bound(&mut solver, Part::B, 1, &f0.latch_next);
        solver.add_clause_in(&[f1.any_bad], Part::B);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert!(
            solver.interpolant().is_some(),
            "A/B labels must survive template instantiation"
        );
    }

    /// CIs that are neither registered inputs nor latch outputs (free
    /// inputs, which `Blaster::fresh_var` can mint for undriven pool
    /// variables) must compile instead of panicking, and must get a
    /// fresh unconstrained variable per frame — the `FrameEncoder`
    /// semantics.
    #[test]
    fn unregistered_cis_are_per_frame_free_inputs() {
        let mut aig = Aig::new();
        let s = aig.new_ci();
        let free = aig.new_ci(); // never registered as an input
        let bad = aig.and(s, free);
        let sys = AigSystem {
            aig,
            inputs: vec![],
            input_names: vec![],
            latches: vec![Latch {
                output: s,
                next: s,
                init: Some(true),
                name: "s".into(),
            }],
            constraints: vec![],
            bads: vec![bad],
            bad_names: vec!["b".into()],
            name: "free-ci".into(),
        };
        let tpl = TransitionTemplate::compile(&sys);
        let (mut solver, frames) = template_chain(&sys, &tpl, 1, true);
        // The free input can fire the bad in one frame and not the
        // other: its variable is fresh per frame.
        assert_eq!(
            solver.solve_with(&[frames[0].any_bad, !frames[1].any_bad]),
            SolveResult::Sat
        );
        assert_eq!(
            solver.solve_with(&[!frames[0].any_bad, frames[1].any_bad]),
            SolveResult::Sat
        );
    }

    /// The tentpole property: the preprocessed template is
    /// equisatisfiable with the raw one under arbitrary assumptions
    /// over the frozen interface (latch-current, latch-next, inputs,
    /// bads, any-bad) — on chained unrollings of random sequential
    /// netlists, initialized or free.
    #[test]
    fn preprocessed_template_equisat_with_raw() {
        let mut rng = StdRng::seed_from_u64(0x9E0C2016);
        for round in 0..40 {
            let sys = random_system(&mut rng);
            let raw = TransitionTemplate::compile(&sys);
            let pre = raw.preprocess();
            raw.lint().expect("raw template passes lint");
            pre.template
                .lint()
                .expect("preprocessing preserves the layout contract");
            let depth = rng.gen_range(0..=3usize);
            let initialized = rng.gen_bool(0.5);
            let (mut rs, rframes) = template_chain(&sys, &raw, depth, initialized);
            let (mut ps, pframes) = template_chain(&sys, &pre.template, depth, initialized);
            for _query in 0..8 {
                let f = rng.gen_range(0..=depth);
                let mut ra: Vec<Lit> = Vec::new();
                let mut pa: Vec<Lit> = Vec::new();
                if rng.gen_bool(0.5) {
                    let bi = rng.gen_range(0..sys.bads.len());
                    ra.push(rframes[f].bads[bi]);
                    pa.push(pframes[f].bads[bi]);
                } else {
                    ra.push(rframes[f].any_bad);
                    pa.push(pframes[f].any_bad);
                }
                for _ in 0..rng.gen_range(0..=3usize) {
                    let ff = rng.gen_range(0..=depth);
                    let pos = rng.gen_bool(0.5);
                    // Latch-current, latch-next or input forcings: all
                    // frozen interface.
                    let (rl, pl) = match rng.gen_range(0..3) {
                        0 => {
                            let li = rng.gen_range(0..sys.latches.len());
                            (rframes[ff].latch_cur[li], pframes[ff].latch_cur[li])
                        }
                        1 => {
                            let li = rng.gen_range(0..sys.latches.len());
                            (rframes[ff].latch_next[li], pframes[ff].latch_next[li])
                        }
                        _ if !sys.inputs.is_empty() => {
                            let ii = rng.gen_range(0..sys.inputs.len());
                            (rframes[ff].inputs[ii], pframes[ff].inputs[ii])
                        }
                        _ => {
                            let li = rng.gen_range(0..sys.latches.len());
                            (rframes[ff].latch_cur[li], pframes[ff].latch_cur[li])
                        }
                    };
                    ra.push(if pos { rl } else { !rl });
                    pa.push(if pos { pl } else { !pl });
                }
                let rr = rs.solve_with(&ra);
                let pr = ps.solve_with(&pa);
                assert_eq!(
                    rr, pr,
                    "round {round} frame {f}: raw {rr:?} preprocessed {pr:?}"
                );
            }
        }
    }

    /// Model reconstruction: a model of one simplified frame extends
    /// to an assignment satisfying every raw-image clause (and the
    /// constraint units), with the interface values unchanged.
    #[test]
    fn reconstruction_satisfies_raw_image() {
        let mut rng = StdRng::seed_from_u64(0xEC0);
        for round in 0..40 {
            let sys = random_system(&mut rng);
            let raw = TransitionTemplate::compile(&sys);
            let pre = raw.preprocess();
            let mut solver = Solver::new();
            // Base 0: simplified template-local var i is solver var i.
            let frame = pre.template.instantiate(&mut solver, Part::A, 0);
            if solver.solve() != SolveResult::Sat {
                continue; // contradictory constraints
            }
            let new_vals: Vec<bool> = (0..pre.template.num_frame_vars())
                .map(|v| solver.value(Lit::pos(Var::from_index(v))).unwrap_or(false))
                .collect();
            let old_vals = pre.recon.extend(&new_vals);
            assert_eq!(old_vals.len(), raw.num_frame_vars());
            let sat = |l: Lit| old_vals[l.var().index()] == l.is_positive();
            let mut start = 0usize;
            for &end in &raw.ends {
                assert!(
                    raw.lits[start..end as usize].iter().any(|&l| sat(l)),
                    "round {round}: raw clause violated by reconstructed model"
                );
                start = end as usize;
            }
            start = 0;
            for &end in &raw.latchy_ends {
                assert!(
                    raw.latchy_lits[start..end as usize].iter().any(|&l| sat(l)),
                    "round {round}: raw latchy clause violated"
                );
                start = end as usize;
            }
            for &c in &raw.constraints {
                assert!(sat(c), "round {round}: constraint violated");
            }
            // Interface values survive renumbering unchanged.
            for (i, &l) in raw.latch_next.iter().enumerate() {
                assert_eq!(
                    sat(l),
                    solver.value(frame.latch_next[i]) == Some(true),
                    "round {round}: latch-next {i} diverged"
                );
            }
        }
    }

    /// Preprocessing must actually shrink a real Tseitin image (the
    /// multiplier the tentpole is about) and keep the layout contract.
    #[test]
    fn preprocessing_shrinks_counter_image() {
        let mut ts = rtlir::TransitionSystem::new("c");
        let s = ts.add_state("count", rtlir::Sort::Bv(8));
        let sv = ts.pool_mut().var(s);
        let one = ts.pool_mut().constv(8, 1);
        let next = ts.pool_mut().add(sv, one);
        let zero = ts.pool_mut().constv(8, 0);
        ts.set_init(s, zero);
        ts.set_next(s, next);
        let nine = ts.pool_mut().constv(8, 9);
        let bad = ts.pool_mut().eq(sv, nine);
        ts.add_bad(bad, "nine");
        let sys = crate::blast_system(&ts);
        let raw = TransitionTemplate::compile(&sys);
        let pre = raw.preprocess();
        raw.lint().expect("raw template passes lint");
        pre.template
            .lint()
            .expect("preprocessed template passes lint");
        assert!(pre.stats.elim_vars > 0, "stats: {:?}", pre.stats);
        assert!(
            pre.template.num_frame_vars() < raw.num_frame_vars(),
            "vars {} !< {}",
            pre.template.num_frame_vars(),
            raw.num_frame_vars()
        );
        assert!(
            pre.template.num_frame_clauses() < raw.num_frame_clauses(),
            "clauses {} !< {}",
            pre.template.num_frame_clauses(),
            raw.num_frame_clauses()
        );
        assert_eq!(pre.template.num_latches(), raw.num_latches());
    }

    /// Interpolation over a preprocessed template: the A/B split is
    /// applied per instantiation, preprocessing happened strictly
    /// inside the (single-part) image, so the refutation still yields
    /// an interpolant.
    #[test]
    fn parts_preserved_for_interpolation_with_preprocessing() {
        let mut aig = Aig::new();
        let a = aig.new_ci();
        let b = aig.new_ci();
        let ab = aig.and(a, b);
        let mk = |output: AigLit, name: &str| Latch {
            output,
            next: ab,
            init: Some(true),
            name: name.into(),
        };
        let sys = AigSystem {
            aig,
            inputs: vec![],
            input_names: vec![],
            latches: vec![mk(a, "a"), mk(b, "b")],
            constraints: vec![],
            bads: vec![!a],
            bad_names: vec!["a dropped".into()],
            name: "hold".into(),
        };
        let tpl = TransitionTemplate::compile(&sys).preprocess().template;
        let mut solver = Solver::with_proof();
        let f0 = tpl.instantiate(&mut solver, Part::A, 0);
        for &l in &f0.latch_cur {
            solver.add_clause_in(&[l], Part::A);
        }
        let f1 = tpl.instantiate_bound(&mut solver, Part::B, 1, &f0.latch_next);
        solver.add_clause_in(&[f1.any_bad], Part::B);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert!(
            solver.interpolant().is_some(),
            "A/B labels must survive preprocessed instantiation"
        );
    }

    /// Chained preprocessed frames still agree with concrete
    /// simulation on every frozen observable.
    #[test]
    fn preprocessed_chain_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(0x51A);
        for _round in 0..20 {
            let sys = random_system(&mut rng);
            if !sys.constraints.is_empty() {
                continue;
            }
            let tpl = TransitionTemplate::compile(&sys).preprocess().template;
            let depth = rng.gen_range(1..=3usize);
            let (mut solver, frames) = template_chain(&sys, &tpl, depth, true);
            let mut assumptions = Vec::new();
            let mut state: Vec<bool> = sys.initial_state();
            for (i, &b) in state.iter().enumerate() {
                let l = frames[0].latch_cur[i];
                assumptions.push(if b { l } else { !l });
            }
            let mut input_vals = Vec::new();
            for frame in frames.iter().take(depth + 1) {
                let iv: Vec<bool> = (0..sys.inputs.len()).map(|_| rng.gen_bool(0.5)).collect();
                for (i, &b) in iv.iter().enumerate() {
                    let l = frame.inputs[i];
                    assumptions.push(if b { l } else { !l });
                }
                input_vals.push(iv);
            }
            assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
            for f in 0..=depth {
                let bads = sys.bads_in(&state, &input_vals[f]);
                assert_eq!(
                    solver.value(frames[f].any_bad),
                    Some(bads.iter().any(|&b| b)),
                    "any-bad at frame {f}"
                );
                for (i, &want) in state.iter().enumerate() {
                    assert_eq!(
                        solver.value(frames[f].latch_cur[i]),
                        Some(want),
                        "latch {i} at frame {f}"
                    );
                }
                state = sys.step(&state, &input_vals[f]);
            }
        }
    }

    /// Query scoping: solves restricted to the cone-derived domain of
    /// a query must agree with unrestricted solves on random template
    /// queries — raw and preprocessed, fresh and chained frames — and
    /// keep failed-assumption cores inside the domain.
    #[test]
    fn domain_restricted_template_queries_agree() {
        use satb::{Domain, Limits};
        let mut rng = StdRng::seed_from_u64(0xD0_A16);
        for round in 0..60 {
            let sys = random_system(&mut rng);
            let raw = TransitionTemplate::compile(&sys);
            let tpl = if rng.gen_bool(0.5) {
                raw.preprocess().template
            } else {
                raw
            };
            tpl.lint().expect("template passes lint");
            let initialized = rng.gen_bool(0.5);
            let chained = rng.gen_bool(0.5);
            let depth = usize::from(chained);
            let (mut s, sframes) = template_chain(&sys, &tpl, depth, initialized);
            let (mut t, tframes) = template_chain(&sys, &tpl, depth, initialized);
            let mut dom = Domain::new();
            for _query in 0..8 {
                let f = rng.gen_range(0..=depth);
                dom.clear();
                // The base must cover every frame the solver holds:
                // each frame's image is live, so each frame's lemma/
                // constraint surface belongs in the domain. Chained
                // frames bind their latch-current variables to the
                // previous frame's latch-next gate outputs, so those
                // cones join the domain to keep it fanin-closed.
                for fr in &sframes {
                    fr.extend_domain_base(&tpl, &mut dom);
                }
                for fr in &sframes[..depth] {
                    for li in 0..sys.latches.len() {
                        fr.extend_domain(&mut dom, tpl.latch_next_cone(li));
                    }
                }
                let mut sa: Vec<Lit> = Vec::new();
                let mut ta: Vec<Lit> = Vec::new();
                match rng.gen_range(0..3) {
                    0 => {
                        let bi = rng.gen_range(0..sys.bads.len());
                        sframes[f].extend_domain(&mut dom, tpl.bad_cone(bi));
                        let pos = rng.gen_bool(0.75);
                        sa.push(if pos {
                            sframes[f].bads[bi]
                        } else {
                            !sframes[f].bads[bi]
                        });
                        ta.push(if pos {
                            tframes[f].bads[bi]
                        } else {
                            !tframes[f].bads[bi]
                        });
                    }
                    1 => {
                        sframes[f].extend_domain(&mut dom, tpl.any_bad_cone());
                        sa.push(sframes[f].any_bad);
                        ta.push(tframes[f].any_bad);
                    }
                    _ => {
                        for _ in 0..rng.gen_range(1..=3usize) {
                            let li = rng.gen_range(0..sys.latches.len());
                            sframes[f].extend_domain(&mut dom, tpl.latch_next_cone(li));
                            let pos = rng.gen_bool(0.5);
                            let (sl, tl) = (sframes[f].latch_next[li], tframes[f].latch_next[li]);
                            sa.push(if pos { sl } else { !sl });
                            ta.push(if pos { tl } else { !tl });
                        }
                    }
                }
                for _ in 0..rng.gen_range(0..=2usize) {
                    // Latch-current forcings are in the base domain.
                    let ff = rng.gen_range(0..=depth);
                    let li = rng.gen_range(0..sys.latches.len());
                    let pos = rng.gen_bool(0.5);
                    let (sl, tl) = (sframes[ff].latch_cur[li], tframes[ff].latch_cur[li]);
                    sa.push(if pos { sl } else { !sl });
                    ta.push(if pos { tl } else { !tl });
                }
                let rd = s.solve_with_domain(&sa, Limits::default(), &dom);
                let ru = t.solve_with(&ta);
                assert_eq!(rd, ru, "round {round} frame {f}: domain {rd:?} full {ru:?}");
                if rd == SolveResult::Unsat {
                    assert!(
                        s.failed_assumptions().iter().all(|l| dom.contains(l.var())),
                        "round {round}: core escapes the domain"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_match_instantiation() {
        let mut rng = StdRng::seed_from_u64(3);
        let sys = random_system(&mut rng);
        let tpl = TransitionTemplate::compile(&sys);
        let mut solver = Solver::new();
        let before_vars = solver.num_vars();
        let f = tpl.instantiate(&mut solver, Part::A, 0);
        assert_eq!(solver.num_vars() - before_vars, tpl.num_frame_vars());
        assert_eq!(f.latch_cur.len(), tpl.num_latches());
        // Solver-side simplification can only drop clauses.
        assert!(solver.num_clauses() <= tpl.num_frame_clauses());
    }
}
