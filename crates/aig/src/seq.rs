//! Sequential AIGs: the bit-level netlist representation.
//!
//! [`blast_system`] lowers a word-level [`rtlir::TransitionSystem`]
//! into an [`AigSystem`] — combinational inputs, latches with init
//! values and next-state functions, constraints and bad outputs. This
//! is the representation the "hardware tool" engines (BMC,
//! k-induction, interpolation, PDR) operate on, mirroring the
//! Verilog→Yosys→BLIF→ABC path in the paper's Figure 2.

use crate::blast::{Blaster, Bundle};
use crate::graph::{Aig, AigLit};
use rtlir::{eval, TransitionSystem, Value};
use std::collections::HashMap;

/// A latch: one bit of sequential state.
#[derive(Clone, Debug)]
pub struct Latch {
    /// CI literal representing the latch output (current state).
    pub output: AigLit,
    /// Next-state function.
    pub next: AigLit,
    /// Reset value; `None` means uninitialized (nondeterministic).
    pub init: Option<bool>,
    /// Display name, e.g. `count[3]`.
    pub name: String,
}

/// A bit-level sequential netlist with safety properties.
#[derive(Clone, Debug)]
pub struct AigSystem {
    /// The combinational logic.
    pub aig: Aig,
    /// Primary-input CI literals (bit-blasted, LSB first per word).
    pub inputs: Vec<AigLit>,
    /// Display names of the primary inputs.
    pub input_names: Vec<String>,
    /// The latches.
    pub latches: Vec<Latch>,
    /// Environment constraints (must hold in every step).
    pub constraints: Vec<AigLit>,
    /// Bad-state outputs (1 = property violated), with names.
    pub bads: Vec<AigLit>,
    /// Names of the bad outputs.
    pub bad_names: Vec<String>,
    /// Design name.
    pub name: String,
}

impl AigSystem {
    /// Number of latches (state bits).
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// The initial state vector (uninitialized latches start false
    /// unless the caller substitutes other values).
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches
            .iter()
            .map(|l| l.init.unwrap_or(false))
            .collect()
    }

    /// Builds the CI value vector for evaluation from a state vector
    /// and primary-input values.
    fn ci_values(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let mut cis = vec![false; self.aig.num_cis()];
        for (i, &l) in self.inputs.iter().enumerate() {
            let ci = self.aig.ci_index(l).expect("input is a CI");
            cis[ci] = inputs.get(i).copied().unwrap_or(false);
        }
        for (i, latch) in self.latches.iter().enumerate() {
            let ci = self
                .aig
                .ci_index(latch.output)
                .expect("latch output is a CI");
            cis[ci] = state[i];
        }
        cis
    }

    /// Evaluates the bad outputs in a given state with given inputs.
    pub fn bads_in(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let cis = self.ci_values(state, inputs);
        let mut cache = vec![None; self.aig.num_nodes()];
        self.bads
            .iter()
            .map(|&b| self.aig.eval_cached(b, &cis, &mut cache))
            .collect()
    }

    /// Evaluates the constraints in a given state with given inputs.
    pub fn constraints_in(&self, state: &[bool], inputs: &[bool]) -> bool {
        let cis = self.ci_values(state, inputs);
        let mut cache = vec![None; self.aig.num_nodes()];
        self.constraints
            .iter()
            .all(|&c| self.aig.eval_cached(c, &cis, &mut cache))
    }

    /// Computes the successor state.
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let cis = self.ci_values(state, inputs);
        let mut cache = vec![None; self.aig.num_nodes()];
        self.latches
            .iter()
            .map(|l| self.aig.eval_cached(l.next, &cis, &mut cache))
            .collect()
    }
}

thread_local! {
    /// Per-thread count of [`blast_system`] calls (observability hook).
    static BLASTS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of [`blast_system`] calls made by the *current thread*.
///
/// Thread-local on purpose: tests assert sharing properties (e.g. "the
/// portfolio blasts once, and engines handed a pre-blasted system never
/// blast") without racing against blasts on unrelated test threads.
pub fn blast_count() -> u64 {
    BLASTS.with(std::cell::Cell::get)
}

fn flatten(bundle: &Bundle, name: &str, out: &mut Vec<(AigLit, String)>) {
    match bundle {
        Bundle::Bits(bits) => {
            for (i, &b) in bits.iter().enumerate() {
                out.push((b, format!("{name}[{i}]")));
            }
        }
        Bundle::Array(a) => {
            for (e, elem) in a.elems.iter().enumerate() {
                for (i, &b) in elem.iter().enumerate() {
                    out.push((b, format!("{name}.{e}[{i}]")));
                }
            }
        }
    }
}

fn init_bits(value: &Value) -> Vec<bool> {
    match value {
        Value::Bv { width, bits } => (0..*width).map(|i| (bits >> i) & 1 == 1).collect(),
        Value::Array(a) => {
            let n = 1u64 << a.index_width;
            let mut out = Vec::new();
            for e in 0..n {
                let v = a.read(e);
                for i in 0..a.elem_width {
                    out.push((v >> i) & 1 == 1);
                }
            }
            out
        }
    }
}

/// Bit-blasts a word-level transition system into a sequential AIG.
///
/// The lowering is purely structural: each input bit and latch bit
/// becomes a CI, next-state functions and properties are blasted with
/// the latch CIs bound, and initial values are evaluated to constants.
///
/// # Example
///
/// ```
/// use rtlir::{Sort, TransitionSystem};
/// use aig::blast_system;
///
/// let mut ts = TransitionSystem::new("c");
/// let s = ts.add_state("count", Sort::Bv(4));
/// let sv = ts.pool_mut().var(s);
/// let one = ts.pool_mut().constv(4, 1);
/// let next = ts.pool_mut().add(sv, one);
/// let zero = ts.pool_mut().constv(4, 0);
/// ts.set_init(s, zero);
/// ts.set_next(s, next);
///
/// let sys = blast_system(&ts);
/// assert_eq!(sys.num_latches(), 4);
/// let s0 = sys.initial_state();
/// let s1 = sys.step(&s0, &[]);
/// assert_eq!(s1, vec![true, false, false, false]); // count == 1
/// ```
pub fn blast_system(ts: &TransitionSystem) -> AigSystem {
    BLASTS.with(|c| c.set(c.get() + 1));
    let pool = ts.pool();
    let mut blaster = Blaster::new(pool);

    // Primary inputs first (CI order: inputs then latches).
    let mut inputs = Vec::new();
    let mut input_names = Vec::new();
    for &iv in ts.inputs() {
        let bundle = blaster.fresh_var(iv);
        let name = &pool.var_decl(iv).name;
        let mut flat = Vec::new();
        flatten(&bundle, name, &mut flat);
        for (l, n) in flat {
            inputs.push(l);
            input_names.push(n);
        }
    }

    // Latch CIs, bound so next/bad expressions see them.
    let mut latch_bits: Vec<(AigLit, String)> = Vec::new();
    let mut per_state: Vec<(usize, usize)> = Vec::new(); // (offset, len) per state
    for s in ts.states() {
        let bundle = blaster.fresh_var(s.var);
        let name = &pool.var_decl(s.var).name;
        let offset = latch_bits.len();
        flatten(&bundle, name, &mut latch_bits);
        per_state.push((offset, latch_bits.len() - offset));
    }

    // Init values.
    let empty_env: HashMap<rtlir::VarId, Value> = HashMap::new();
    let mut init_vals: Vec<Option<bool>> = vec![None; latch_bits.len()];
    for (si, s) in ts.states().iter().enumerate() {
        if let Some(init) = s.init {
            let v = eval(pool, init, &empty_env);
            let bits = init_bits(&v);
            let (off, len) = per_state[si];
            assert_eq!(bits.len(), len, "init width mismatch");
            for (i, b) in bits.into_iter().enumerate() {
                init_vals[off + i] = Some(b);
            }
        }
    }

    // Next-state functions.
    let mut next_bits: Vec<AigLit> = vec![AigLit::FALSE; latch_bits.len()];
    for (si, s) in ts.states().iter().enumerate() {
        let (off, len) = per_state[si];
        match s.next {
            Some(next) => {
                let bundle = blaster.blast(next);
                let mut flat = Vec::new();
                flatten(&bundle, "", &mut flat);
                assert_eq!(flat.len(), len, "next width mismatch");
                for (i, (l, _)) in flat.into_iter().enumerate() {
                    next_bits[off + i] = l;
                }
            }
            None => {
                // Frozen state: next = current.
                for i in 0..len {
                    next_bits[off + i] = latch_bits[off + i].0;
                }
            }
        }
    }

    // Constraints and bads.
    let constraints: Vec<AigLit> = ts
        .constraints()
        .iter()
        .map(|&c| blaster.blast_bit(c))
        .collect();
    let bads: Vec<AigLit> = ts
        .bads()
        .iter()
        .map(|b| blaster.blast_bit(b.expr))
        .collect();
    let bad_names: Vec<String> = ts.bads().iter().map(|b| b.name.clone()).collect();

    let aig = blaster.into_aig();
    let latches = latch_bits
        .into_iter()
        .zip(next_bits)
        .zip(init_vals)
        .map(|(((output, name), next), init)| Latch {
            output,
            next,
            init,
            name,
        })
        .collect();

    AigSystem {
        aig,
        inputs,
        input_names,
        latches,
        constraints,
        bads,
        bad_names,
        name: ts.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rtlir::{Simulator, Sort};

    fn demo_ts() -> TransitionSystem {
        // A small design exercising arithmetic, memory and control:
        //   ptr  : 3-bit pointer, +1 when push
        //   mem  : 8 x 4 memory, written at ptr on push
        //   sum  : 4-bit accumulator of pushed data
        // bad: sum == 15
        let mut ts = TransitionSystem::new("demo");
        let push = ts.add_input("push", Sort::BOOL);
        let data = ts.add_input("data", Sort::Bv(4));
        let ptr = ts.add_state("ptr", Sort::Bv(3));
        let mem = ts.add_state("mem", Sort::array(3, 4));
        let sum = ts.add_state("sum", Sort::Bv(4));

        let p = ts.pool_mut();
        let (pushv, datav, ptrv, memv, sumv) =
            (p.var(push), p.var(data), p.var(ptr), p.var(mem), p.var(sum));
        let one3 = p.constv(3, 1);
        let inc = p.add(ptrv, one3);
        let ptr_next = p.ite(pushv, inc, ptrv);
        let wr = p.write(memv, ptrv, datav);
        let mem_next = p.ite(pushv, wr, memv);
        let add = p.add(sumv, datav);
        let sum_next = p.ite(pushv, add, sumv);
        let z3 = p.constv(3, 0);
        let zmem = p.const_array(3, 4, 0);
        let z4 = p.constv(4, 0);
        let c15 = p.constv(4, 15);
        let bad = p.eq(sumv, c15);

        ts.set_init(ptr, z3);
        ts.set_init(mem, zmem);
        ts.set_init(sum, z4);
        ts.set_next(ptr, ptr_next);
        ts.set_next(mem, mem_next);
        ts.set_next(sum, sum_next);
        ts.add_bad(bad, "sum is 15");
        ts
    }

    #[test]
    fn blasted_simulation_matches_word_level() {
        let ts = demo_ts();
        let sys = blast_system(&ts);
        assert_eq!(sys.num_latches(), 3 + 8 * 4 + 4);

        let mut rng = StdRng::seed_from_u64(99);
        let mut word_sim = Simulator::new(&ts);
        let mut bit_state = sys.initial_state();

        for _cycle in 0..200 {
            let push = rng.gen_bool(0.7);
            let data: u64 = rng.gen_range(0..16);
            let word_inputs = [Value::bit(push), Value::bv(4, data)];
            let mut bit_inputs = vec![push];
            for i in 0..4 {
                bit_inputs.push((data >> i) & 1 == 1);
            }

            let word_bads = word_sim.bad_states_with_inputs(&word_inputs);
            let bit_bads = sys.bads_in(&bit_state, &bit_inputs);
            assert_eq!(word_bads, bit_bads, "bad flags diverge");

            word_sim.step(&word_inputs);
            bit_state = sys.step(&bit_state, &bit_inputs);

            // Cross-check a full state readback each cycle.
            let ptr_word = word_sim.state_value(ts.states()[0].var).bits();
            let mut ptr_bits = 0u64;
            for i in 0..3 {
                if bit_state[i] {
                    ptr_bits |= 1 << i;
                }
            }
            assert_eq!(ptr_bits, ptr_word, "ptr diverges");
            let sum_word = word_sim.state_value(ts.states()[2].var).bits();
            let off = 3 + 32;
            let mut sum_bits = 0u64;
            for i in 0..4 {
                if bit_state[off + i] {
                    sum_bits |= 1 << i;
                }
            }
            assert_eq!(sum_bits, sum_word, "sum diverges");
        }
    }

    #[test]
    fn init_values_propagate() {
        let ts = demo_ts();
        let sys = blast_system(&ts);
        let s0 = sys.initial_state();
        assert!(s0.iter().all(|&b| !b), "everything initializes to zero");
        assert!(sys.latches.iter().all(|l| l.init == Some(false)));
    }

    #[test]
    fn names_are_flattened() {
        let ts = demo_ts();
        let sys = blast_system(&ts);
        assert_eq!(sys.input_names[0], "push[0]");
        assert_eq!(sys.input_names[1], "data[0]");
        assert!(sys.latches.iter().any(|l| l.name == "mem.5[2]"));
        assert_eq!(sys.bad_names, vec!["sum is 15".to_string()]);
    }

    #[test]
    fn frozen_state_keeps_value() {
        let mut ts = TransitionSystem::new("frozen");
        let s = ts.add_state("s", Sort::Bv(2));
        let two = ts.pool_mut().constv(2, 2);
        ts.set_init(s, two);
        // No next function: state freezes.
        let sys = blast_system(&ts);
        let s0 = sys.initial_state();
        assert_eq!(s0, vec![false, true]);
        let s1 = sys.step(&s0, &[]);
        assert_eq!(s1, s0);
    }
}
