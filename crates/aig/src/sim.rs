//! Ternary (three-valued) simulation of the sequential netlist.
//!
//! [`TernarySim`] evaluates the latch-next / constraint / bad cones of
//! an [`AigSystem`] over the domain `{0, 1, X}`: a latch set to
//! [`Tern::X`] stands for *both* values at once, and an output that
//! still evaluates to a definite value is independent of that latch.
//!
//! This is the cube-generalization engine of IC3/PDR (Eén, Mishchenko,
//! Brayton 2011): given a SAT model — a bad state, or a predecessor
//! driving into a proof-obligation cube — the engine X-es out one latch
//! at a time and keeps the drop whenever the relevant outputs (the
//! fired bad output, or the next-state bits matching the target cube)
//! stay at their required definite values. Every state in the widened
//! cube then provably behaves like the model under the same inputs, so
//! obligations cover many states per SAT query instead of one.
//!
//! The simulator pre-computes one topological order over the union cone
//! (the same roots the CNF [`crate::TransitionTemplate`] compiles) and
//! re-evaluates it in place per trial — no per-trial allocation.
//! Combinational inputs that are neither registered primary inputs nor
//! latch outputs (free inputs) are held at `X`, so a definite output is
//! definite for *every* value of them — the conservative choice that
//! keeps generalized counterexample traces replayable.

use crate::graph::AigLit;
use crate::seq::AigSystem;

/// A three-valued simulation value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tern {
    /// Definitely false.
    F,
    /// Definitely true.
    T,
    /// Unknown / both values.
    X,
}

impl Tern {
    /// Lifts a Boolean.
    pub fn from_bool(b: bool) -> Tern {
        if b {
            Tern::T
        } else {
            Tern::F
        }
    }

    /// The definite value, if any.
    pub fn known(self) -> Option<bool> {
        match self {
            Tern::F => Some(false),
            Tern::T => Some(true),
            Tern::X => None,
        }
    }

    /// Kleene conjunction: false dominates X.
    fn and(self, other: Tern) -> Tern {
        match (self, other) {
            (Tern::F, _) | (_, Tern::F) => Tern::F,
            (Tern::T, Tern::T) => Tern::T,
            _ => Tern::X,
        }
    }
}

impl std::ops::Not for Tern {
    type Output = Tern;
    fn not(self) -> Tern {
        match self {
            Tern::F => Tern::T,
            Tern::T => Tern::F,
            Tern::X => Tern::X,
        }
    }
}

/// A reusable three-valued evaluator over the union cone of a system's
/// latch-next, constraint and bad outputs.
#[derive(Clone, Debug)]
pub struct TernarySim {
    /// AND nodes of the union cone, in topological order.
    order: Vec<u32>,
    /// Per-node value of the current evaluation.
    vals: Vec<Tern>,
    /// CI node per latch (ordinal order).
    latch_nodes: Vec<u32>,
    /// CI node per registered primary input.
    input_nodes: Vec<u32>,
}

impl TernarySim {
    /// Prepares a simulator for `sys` (one cone walk; reuse the value
    /// across many [`eval`](TernarySim::eval) calls).
    pub fn new(sys: &AigSystem) -> TernarySim {
        let mut roots: Vec<AigLit> =
            Vec::with_capacity(sys.latches.len() + sys.constraints.len() + sys.bads.len());
        roots.extend(sys.latches.iter().map(|l| l.next));
        roots.extend(sys.constraints.iter().copied());
        roots.extend(sys.bads.iter().copied());
        TernarySim {
            order: sys.aig.cone(&roots),
            vals: vec![Tern::X; sys.aig.num_nodes()],
            latch_nodes: sys.latches.iter().map(|l| l.output.node()).collect(),
            input_nodes: sys.inputs.iter().map(|l| l.node()).collect(),
        }
    }

    /// Evaluates the cone under a three-valued latch state and concrete
    /// primary inputs (missing input bits and free CIs are `X`). Read
    /// results with [`value`](TernarySim::value).
    pub fn eval(&mut self, sys: &AigSystem, state: &[Tern], inputs: &[bool]) {
        debug_assert_eq!(state.len(), self.latch_nodes.len());
        for v in self.vals.iter_mut() {
            *v = Tern::X;
        }
        self.vals[0] = Tern::F; // the constant node
        for (i, &n) in self.latch_nodes.iter().enumerate() {
            self.vals[n as usize] = state[i];
        }
        for (i, &n) in self.input_nodes.iter().enumerate() {
            self.vals[n as usize] = match inputs.get(i) {
                Some(&b) => Tern::from_bool(b),
                None => Tern::X,
            };
        }
        for &n in &self.order {
            let (a, b) = sys
                .aig
                .and_fanins_of_node(n)
                .expect("cone() yields AND nodes only");
            let va = self.lit_val(a);
            let vb = self.lit_val(b);
            self.vals[n as usize] = va.and(vb);
        }
    }

    fn lit_val(&self, l: AigLit) -> Tern {
        let v = self.vals[l.node() as usize];
        if l.is_compl() {
            !v
        } else {
            v
        }
    }

    /// The value of a literal in the last evaluation. Only meaningful
    /// for literals inside the simulated cone (latch-next, constraint
    /// and bad roots and their fanin); anything else reads `X`.
    pub fn value(&self, l: AigLit) -> Tern {
        self.lit_val(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The shared random sequential netlist (see [`crate::testutil`]).
    fn random_system(rng: &mut StdRng) -> AigSystem {
        crate::testutil::random_system(rng, &crate::testutil::RandomSystemConfig::default())
    }

    /// With a fully concrete state, ternary simulation must agree with
    /// the Boolean evaluator on every root.
    #[test]
    fn concrete_states_match_boolean_eval() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let sys = random_system(&mut rng);
            let mut sim = TernarySim::new(&sys);
            for _ in 0..8 {
                let state: Vec<bool> = (0..sys.latches.len()).map(|_| rng.gen_bool(0.5)).collect();
                let inputs: Vec<bool> = (0..sys.inputs.len()).map(|_| rng.gen_bool(0.5)).collect();
                let tstate: Vec<Tern> = state.iter().map(|&b| Tern::from_bool(b)).collect();
                sim.eval(&sys, &tstate, &inputs);
                let next = sys.step(&state, &inputs);
                for (i, latch) in sys.latches.iter().enumerate() {
                    assert_eq!(sim.value(latch.next), Tern::from_bool(next[i]), "latch {i}");
                }
                let bads = sys.bads_in(&state, &inputs);
                for (i, &b) in sys.bads.iter().enumerate() {
                    assert_eq!(sim.value(b), Tern::from_bool(bads[i]), "bad {i}");
                }
            }
        }
    }

    /// Soundness of X: whenever ternary simulation reports a definite
    /// value with some latches at X, every completion of those latches
    /// agrees with it.
    #[test]
    fn definite_outputs_hold_for_all_completions() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let sys = random_system(&mut rng);
            let n = sys.latches.len();
            let mut sim = TernarySim::new(&sys);
            let state: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let inputs: Vec<bool> = (0..sys.inputs.len()).map(|_| rng.gen_bool(0.5)).collect();
            let xmask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let tstate: Vec<Tern> = (0..n)
                .map(|i| {
                    if xmask[i] {
                        Tern::X
                    } else {
                        Tern::from_bool(state[i])
                    }
                })
                .collect();
            sim.eval(&sys, &tstate, &inputs);
            let verdicts: Vec<Tern> = sys.bads.iter().map(|&b| sim.value(b)).collect();
            let next_verdicts: Vec<Tern> = sys.latches.iter().map(|l| sim.value(l.next)).collect();
            // Enumerate every completion of the X-ed latches.
            let xs: Vec<usize> = (0..n).filter(|&i| xmask[i]).collect();
            for m in 0u32..(1 << xs.len()) {
                let mut s = state.clone();
                for (bit, &i) in xs.iter().enumerate() {
                    s[i] = (m >> bit) & 1 == 1;
                }
                let bads = sys.bads_in(&s, &inputs);
                for (i, v) in verdicts.iter().enumerate() {
                    if let Some(want) = v.known() {
                        assert_eq!(bads[i], want, "bad {i} not independent of X set");
                    }
                }
                let next = sys.step(&s, &inputs);
                for (i, v) in next_verdicts.iter().enumerate() {
                    if let Some(want) = v.known() {
                        assert_eq!(next[i], want, "next {i} not independent of X set");
                    }
                }
            }
        }
    }
}
