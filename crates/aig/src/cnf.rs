//! Tseitin encoding of AIG cones into a SAT solver.

use crate::graph::{Aig, AigLit};
use satb::{Lit, Part, Solver};
use std::collections::HashMap;

/// Encodes AIG cones into a [`satb::Solver`], one instance per time
/// frame (or per interpolation partition).
///
/// CIs can be pre-bound to existing SAT literals with
/// [`bind`](FrameEncoder::bind) — this is how engines wire latch
/// variables between frames, and how interpolation engines control
/// exactly which SAT variables are shared between the `A` and `B`
/// partitions. Unbound CIs get fresh SAT variables on first use (free
/// inputs).
///
/// # Example
///
/// ```
/// use aig::{Aig, FrameEncoder};
/// use satb::{Part, SolveResult, Solver};
///
/// let mut g = Aig::new();
/// let a = g.new_ci();
/// let b = g.new_ci();
/// let c = g.and(a, b);
///
/// let mut solver = Solver::new();
/// let mut enc = FrameEncoder::new();
/// let cl = enc.encode(&g, &mut solver, c, Part::A);
/// solver.add_clause(&[cl]); // force a & b
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// let al = enc.encode(&g, &mut solver, a, Part::A);
/// assert_eq!(solver.value(al), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    map: HashMap<u32, Lit>,
    const_true: Option<Lit>,
}

impl FrameEncoder {
    /// Creates an empty encoder.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Pre-binds a (non-complemented) CI literal to a SAT literal.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is complemented.
    pub fn bind(&mut self, ci: AigLit, sat: Lit) {
        assert!(!ci.is_compl(), "bind the plain CI literal");
        self.map.insert(ci.node(), sat);
    }

    /// The SAT literal a node was mapped to, if encoded or bound.
    pub fn mapped(&self, l: AigLit) -> Option<Lit> {
        self.map
            .get(&l.node())
            .map(|&s| if l.is_compl() { !s } else { s })
    }

    fn true_lit(&mut self, solver: &mut Solver, part: Part) -> Lit {
        match self.const_true {
            Some(l) => l,
            None => {
                let v = solver.new_var();
                let l = Lit::pos(v);
                solver.add_clause_in(&[l], part);
                self.const_true = Some(l);
                l
            }
        }
    }

    fn leaf_lit(&mut self, solver: &mut Solver, l: AigLit, part: Part) -> Lit {
        if l.is_const() {
            let t = self.true_lit(solver, part);
            return if l == AigLit::TRUE { t } else { !t };
        }
        let base = match self.map.get(&l.node()) {
            Some(&s) => s,
            None => {
                let s = Lit::pos(solver.new_var());
                self.map.insert(l.node(), s);
                s
            }
        };
        if l.is_compl() {
            !base
        } else {
            base
        }
    }

    /// Encodes the cone of `root`, adding Tseitin clauses labelled
    /// `part`, and returns the SAT literal equivalent to `root`.
    ///
    /// Nodes already encoded (by earlier calls on this encoder) are
    /// reused without new clauses, making repeated calls cheap.
    pub fn encode(&mut self, aig: &Aig, solver: &mut Solver, root: AigLit, part: Part) -> Lit {
        if root.is_const() {
            return self.leaf_lit(solver, root, part);
        }
        for n in aig.cone(&[root]) {
            if self.map.contains_key(&n) {
                continue;
            }
            let (a, b) = aig
                .and_fanins_of_node(n)
                .expect("cone() yields AND nodes only");
            let la = self.leaf_lit(solver, a, part);
            let lb = self.leaf_lit(solver, b, part);
            let ln = Lit::pos(solver.new_var());
            // n <-> a & b
            solver.add_clause_in(&[!ln, la], part);
            solver.add_clause_in(&[!ln, lb], part);
            solver.add_clause_in(&[!la, !lb, ln], part);
            self.map.insert(n, ln);
        }
        self.leaf_lit(solver, root, part)
    }

    /// Like [`encode`](FrameEncoder::encode), but labels every emitted
    /// Tseitin clause with a caller tag (see
    /// [`satb::Solver::add_clause_tagged`]) so one refutation can be
    /// re-partitioned into sequence interpolants.
    pub fn encode_tagged(
        &mut self,
        aig: &Aig,
        solver: &mut Solver,
        root: AigLit,
        part: Part,
        tag: u32,
    ) -> Lit {
        if root.is_const() {
            return self.leaf_lit(solver, root, part);
        }
        for n in aig.cone(&[root]) {
            if self.map.contains_key(&n) {
                continue;
            }
            let (a, b) = aig
                .and_fanins_of_node(n)
                .expect("cone() yields AND nodes only");
            let la = self.leaf_lit(solver, a, part);
            let lb = self.leaf_lit(solver, b, part);
            let ln = Lit::pos(solver.new_var());
            solver.add_clause_tagged(&[!ln, la], part, tag);
            solver.add_clause_tagged(&[!ln, lb], part, tag);
            solver.add_clause_tagged(&[!la, !lb, ln], part, tag);
            self.map.insert(n, ln);
        }
        self.leaf_lit(solver, root, part)
    }

    /// Encodes every root and returns their SAT literals.
    pub fn encode_all(
        &mut self,
        aig: &Aig,
        solver: &mut Solver,
        roots: &[AigLit],
        part: Part,
    ) -> Vec<Lit> {
        roots
            .iter()
            .map(|&r| self.encode(aig, solver, r, part))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use satb::SolveResult;

    /// Random AIG, random CI values: forcing the encoded output to the
    /// evaluated value must be SAT, forcing it to the complement under
    /// the same CI values must be UNSAT.
    #[test]
    fn encoding_agrees_with_aig_eval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _round in 0..60 {
            let mut g = Aig::new();
            let ncis = rng.gen_range(2..=6usize);
            let cis: Vec<AigLit> = (0..ncis).map(|_| g.new_ci()).collect();
            let mut lits = cis.clone();
            for _ in 0..rng.gen_range(1..=25usize) {
                let a = lits[rng.gen_range(0..lits.len())];
                let b = lits[rng.gen_range(0..lits.len())];
                let a = if rng.gen_bool(0.5) { !a } else { a };
                let b = if rng.gen_bool(0.5) { !b } else { b };
                let n = match rng.gen_range(0..3) {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    _ => g.xor(a, b),
                };
                lits.push(n);
            }
            let root = *lits.last().expect("nonempty");
            let ci_vals: Vec<bool> = (0..ncis).map(|_| rng.gen_bool(0.5)).collect();
            let want = g.eval(root, &ci_vals);

            let mut solver = Solver::new();
            let mut enc = FrameEncoder::new();
            // Bind CIs to fixed values via unit clauses.
            for (i, &ci) in cis.iter().enumerate() {
                let l = Lit::pos(solver.new_var());
                enc.bind(ci, l);
                solver.add_clause(&[if ci_vals[i] { l } else { !l }]);
            }
            let rl = enc.encode(&g, &mut solver, root, Part::A);
            solver.add_clause(&[if want { rl } else { !rl }]);
            assert_eq!(solver.solve(), SolveResult::Sat);

            // Re-encode in a fresh solver, forcing the complement.
            let mut solver2 = Solver::new();
            let mut enc2 = FrameEncoder::new();
            for (i, &ci) in cis.iter().enumerate() {
                let l = Lit::pos(solver2.new_var());
                enc2.bind(ci, l);
                solver2.add_clause(&[if ci_vals[i] { l } else { !l }]);
            }
            let rl2 = enc2.encode(&g, &mut solver2, root, Part::A);
            solver2.add_clause(&[if want { !rl2 } else { rl2 }]);
            assert_eq!(solver2.solve(), SolveResult::Unsat);
        }
    }

    #[test]
    fn constant_roots() {
        let g = Aig::new();
        let mut solver = Solver::new();
        let mut enc = FrameEncoder::new();
        let t = enc.encode(&g, &mut solver, AigLit::TRUE, Part::A);
        let f = enc.encode(&g, &mut solver, AigLit::FALSE, Part::A);
        assert_eq!(t, !f);
        solver.add_clause(&[t]);
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn shared_nodes_encoded_once() {
        let mut g = Aig::new();
        let a = g.new_ci();
        let b = g.new_ci();
        let x = g.and(a, b);
        let y = g.or(x, a);
        let mut solver = Solver::new();
        let mut enc = FrameEncoder::new();
        let _ = enc.encode(&g, &mut solver, x, Part::A);
        let n = solver.num_clauses();
        let _ = enc.encode(&g, &mut solver, y, Part::A);
        // Encoding y must only add clauses for the one new AND gate.
        assert_eq!(solver.num_clauses(), n + 3);
    }
}
