//! The and-inverter graph.

use std::collections::HashMap;
use std::fmt;

/// A literal in an [`Aig`]: a node index with a complement flag,
/// encoded as `node << 1 | complemented`.
///
/// Node 0 is the constant-false node, so [`AigLit::FALSE`] is code 0
/// and [`AigLit::TRUE`] is code 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant true literal.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, compl: bool) -> AigLit {
        AigLit(node << 1 | compl as u32)
    }
    /// The node index this literal points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }
    /// Whether the literal is complemented.
    pub fn is_compl(self) -> bool {
        self.0 & 1 == 1
    }
    /// The literal for a constant.
    pub fn constant(b: bool) -> AigLit {
        if b {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }
    /// Whether this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
    /// The raw code, for dense side tables.
    pub fn code(self) -> usize {
        self.0 as usize
    }
    /// Reconstructs a literal from a raw code previously obtained via
    /// [`code`](AigLit::code).
    pub fn from_code(code: usize) -> AigLit {
        AigLit(code as u32)
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_compl() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// Kind of an AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeKind {
    Const,
    /// Combinational input (primary input or latch output), with its
    /// CI ordinal.
    Ci(u32),
    And(AigLit, AigLit),
}

/// A structurally hashed and-inverter graph.
///
/// Nodes are constants, combinational inputs (CIs) and two-input AND
/// gates; inversion lives on edges. The builder methods perform
/// constant propagation and simple local rewrites, plus structural
/// hashing, so equivalent-by-construction gates share a node.
#[derive(Clone, Debug)]
pub struct Aig {
    nodes: Vec<NodeKind>,
    num_cis: u32,
    strash: HashMap<(AigLit, AigLit), AigLit>,
}

impl Default for Aig {
    fn default() -> Aig {
        Aig::new()
    }
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![NodeKind::Const],
            num_cis: 0,
            strash: HashMap::new(),
        }
    }

    /// Total number of nodes (constant + CIs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of combinational inputs created so far.
    pub fn num_cis(&self) -> usize {
        self.num_cis as usize
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_cis as usize
    }

    /// Creates a fresh combinational input and returns its literal.
    pub fn new_ci(&mut self) -> AigLit {
        let node = self.nodes.len() as u32;
        self.nodes.push(NodeKind::Ci(self.num_cis));
        self.num_cis += 1;
        AigLit::new(node, false)
    }

    /// The CI ordinal of a literal's node, if it is a CI.
    pub fn ci_index(&self, l: AigLit) -> Option<usize> {
        match self.nodes[l.node() as usize] {
            NodeKind::Ci(i) => Some(i as usize),
            _ => None,
        }
    }

    /// The (non-complemented) literals of all CIs, in ordinal order.
    pub fn ci_lits(&self) -> Vec<AigLit> {
        let mut out = vec![AigLit::FALSE; self.num_cis as usize];
        for (n, kind) in self.nodes.iter().enumerate() {
            if let NodeKind::Ci(i) = kind {
                out[*i as usize] = AigLit::from_code(n << 1);
            }
        }
        out
    }

    /// The fanins of an AND node, if `l` points at one.
    pub fn and_fanins(&self, l: AigLit) -> Option<(AigLit, AigLit)> {
        self.and_fanins_of_node(l.node())
    }

    /// The fanins of an AND node given a raw node index.
    pub fn and_fanins_of_node(&self, node: u32) -> Option<(AigLit, AigLit)> {
        match self.nodes[node as usize] {
            NodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// AND of two literals (with folding and structural hashing).
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&l) = self.strash.get(&(x, y)) {
            return l;
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(NodeKind::And(x, y));
        let l = AigLit::new(node, false);
        self.strash.insert((x, y), l);
        l
    }

    /// OR of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR of two literals (two AND gates).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Multiplexer: `c ? t : e`.
    pub fn mux(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let n1 = self.and(c, t);
        let n2 = self.and(!c, e);
        self.or(n1, n2)
    }

    /// AND over a slice of literals.
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// OR over a slice of literals.
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Evaluates a literal given values for all CIs (indexed by CI
    /// ordinal). Used by tests and trace replay; the three-valued
    /// variant PDR uses for cube generalization lives in
    /// [`crate::sim::TernarySim`].
    pub fn eval(&self, root: AigLit, ci_values: &[bool]) -> bool {
        let mut vals: Vec<Option<bool>> = vec![None; self.nodes.len()];
        self.eval_cached(root, ci_values, &mut vals)
    }

    /// Like [`eval`](Aig::eval) but reuses a caller-provided cache
    /// (`None`-initialized, one slot per node) across multiple roots.
    pub fn eval_cached(&self, root: AigLit, ci_values: &[bool], vals: &mut [Option<bool>]) -> bool {
        let mut stack = vec![root.node()];
        while let Some(n) = stack.pop() {
            if vals[n as usize].is_some() {
                continue;
            }
            match self.nodes[n as usize] {
                NodeKind::Const => {
                    vals[n as usize] = Some(false);
                }
                NodeKind::Ci(i) => {
                    vals[n as usize] = Some(ci_values[i as usize]);
                }
                NodeKind::And(a, b) => {
                    let (va, vb) = (vals[a.node() as usize], vals[b.node() as usize]);
                    match (va, vb) {
                        (Some(x), Some(y)) => {
                            let xa = x != a.is_compl();
                            let xb = y != b.is_compl();
                            vals[n as usize] = Some(xa && xb);
                        }
                        _ => {
                            stack.push(n);
                            if va.is_none() {
                                stack.push(a.node());
                            }
                            if vb.is_none() {
                                stack.push(b.node());
                            }
                        }
                    }
                }
            }
        }
        let v = vals[root.node() as usize].expect("evaluated");
        v != root.is_compl()
    }

    /// The nodes in the transitive fanin cone of `roots` (AND nodes
    /// only), in topological order.
    pub fn cone(&self, roots: &[AigLit]) -> Vec<u32> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack: Vec<(u32, bool)> = roots.iter().map(|l| (l.node(), false)).collect();
        while let Some((n, expanded)) = stack.pop() {
            if seen[n as usize] {
                continue;
            }
            if let NodeKind::And(a, b) = self.nodes[n as usize] {
                if expanded {
                    seen[n as usize] = true;
                    order.push(n);
                } else {
                    stack.push((n, true));
                    stack.push((a.node(), false));
                    stack.push((b.node(), false));
                }
            } else {
                seen[n as usize] = true;
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_identities() {
        let mut g = Aig::new();
        let a = g.new_ci();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(g.num_ands(), 0, "identities must not allocate gates");
    }

    #[test]
    fn structural_hashing() {
        let mut g = Aig::new();
        let a = g.new_ci();
        let b = g.new_ci();
        let c1 = g.and(a, b);
        let c2 = g.and(b, a);
        assert_eq!(c1, c2);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn truth_tables() {
        let mut g = Aig::new();
        let a = g.new_ci();
        let b = g.new_ci();
        let and = g.and(a, b);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let cis = [va, vb];
            assert_eq!(g.eval(and, &cis), va && vb);
            assert_eq!(g.eval(or, &cis), va || vb);
            assert_eq!(g.eval(xor, &cis), va ^ vb);
            assert_eq!(g.eval(!and, &cis), !(va && vb));
        }
    }

    #[test]
    fn mux_truth_table() {
        let mut g = Aig::new();
        let c = g.new_ci();
        let t = g.new_ci();
        let e = g.new_ci();
        let m = g.mux(c, t, e);
        for i in 0..8u32 {
            let cis = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let want = if cis[0] { cis[1] } else { cis[2] };
            assert_eq!(g.eval(m, &cis), want, "mux({cis:?})");
        }
    }

    #[test]
    fn cone_topological() {
        let mut g = Aig::new();
        let a = g.new_ci();
        let b = g.new_ci();
        let x = g.and(a, b);
        let y = g.and(x, !a);
        let cone = g.cone(&[y]);
        assert_eq!(cone.len(), 2);
        // x must come before y.
        assert_eq!(cone[0], x.node());
        assert_eq!(cone[1], y.node());
    }

    #[test]
    fn deep_eval_no_stack_overflow() {
        let mut g = Aig::new();
        let a = g.new_ci();
        let b = g.new_ci();
        let mut acc = g.and(a, b);
        for _ in 0..100_000 {
            acc = g.and(acc, a);
            // acc stays the same node due to a&a folding; vary with xor.
            acc = g.xor(acc, b);
        }
        let _ = g.eval(acc, &[true, false]);
    }
}
