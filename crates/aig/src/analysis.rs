//! Netlist abstract interpretation: mined, inductive latch invariants.
//!
//! The cheapest software-analysis technique the DATE 2016 paper's
//! premise points at — abstract interpretation over a static fixpoint —
//! applied directly to the bit-level netlist. The pass produces a
//! [`StaticInvariant`]: a set of clauses over latch variables that is
//! **inductive** for the design's transition relation, cheap enough to
//! compute up front, and strong enough to prune work from every SAT
//! engine that consumes the netlist afterwards.
//!
//! # Domains
//!
//! Two abstract domains feed the candidate pool:
//!
//! 1. **Ternary reachability** ([`TernarySim`]): starting from the
//!    X-initialized reset state (uninitialized latches and all primary
//!    inputs held at X), the latch state vector is stepped through the
//!    three-valued transition function and *joined* with its
//!    predecessor until a fixpoint. Values only ever move definite → X,
//!    so the fixpoint arrives within `L` rounds. Latches still definite
//!    at the fixpoint are **stuck-at-constant** in every reachable
//!    state — a sound fact, found without a single SAT call.
//! 2. **Random concrete simulation**: a deterministic xorshift-seeded
//!    walk (several restarts from random concretizations of the reset
//!    state, random inputs) collects per-latch value signatures.
//!    Latches with equal / complementary / implied signatures yield
//!    candidate equivalence, antivalence and implication clauses;
//!    constant signatures yield candidate stuck-at facts the ternary
//!    domain was too coarse to see. These are *guesses*, not facts.
//!
//! # The Houdini loop
//!
//! Candidates that survive a syntactic **initiation** filter (a clause
//! holds in every initial state iff one of its literals is pinned true
//! by a reset value) enter a Houdini-style fixpoint over one frame of
//! the transition template: all surviving candidates are assumed on the
//! current-state side (each behind its own guard literal), and each
//! candidate's **consecution** is queried on the next-state side. Every
//! candidate falsified by a SAT model is dropped — the model is a
//! reachable-looking state that steps outside the candidate — and the
//! loop repeats until a full pass makes no drop. The surviving set is
//! inductive *as a set*: the final pass checked every member under
//! exactly the final assumptions.
//!
//! # Soundness
//!
//! The pass is advisory: its output is re-checked by
//! `engines::certify::certify_invariant` against the raw,
//! un-preprocessed template with an independent solver before any
//! engine consumes it, so a bug here can cost strength but never
//! soundness. Cancellation (the shared [`satb::Limits::stop`] flag, a
//! deadline, or a conflict cap) aborts the whole analysis and returns
//! an **empty** invariant with [`AnalysisStats::cancelled`] set — never
//! a partially-filtered candidate set that was not driven to the
//! Houdini fixpoint.
//!
//! [`refine_with_constants`] additionally lets the template compiler
//! consume the certified stuck-at facts: constants are substituted into
//! every cone (folding logic away), constraints that fold to `true` are
//! stripped, and the AIG is rebuilt cone-first — a cone-of-influence
//! refinement with a node remap. The refined system is only sound for
//! engines that assert the invariant on every frame they instantiate,
//! which is exactly the contract `engines::Blasted` enforces.

use crate::seq::AigSystem;
use crate::sim::{Tern, TernarySim};
use crate::template::TransitionTemplate;
use satb::{Lit, Part, SolveResult, Solver};

/// A clause over latches: `(latch index, polarity)` literals, true when
/// some latch holds its polarity. Mirrors `engines::certify`'s clausal
/// certificate shape.
pub type LatchClause = Vec<(usize, bool)>;

/// Tuning knobs for [`analyze`].
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Cap on the number of candidate clauses entering Houdini.
    pub max_candidates: usize,
    /// Concrete-simulation restarts used for candidate mining.
    pub sim_restarts: usize,
    /// Steps per concrete-simulation restart.
    pub sim_steps: usize,
    /// Latch-count ceiling for the pairwise implication scan (the
    /// equivalence scan sorts signatures and has no such ceiling).
    pub max_implication_latches: usize,
    /// Per-query conflict cap for the Houdini solver, applied when the
    /// caller's [`satb::Limits`] carries none.
    pub max_conflicts: u64,
    /// Seed for the deterministic simulation PRNG.
    pub seed: u64,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            max_candidates: 512,
            sim_restarts: 8,
            sim_steps: 48,
            max_implication_latches: 96,
            max_conflicts: 20_000,
            seed: 0x5EED_1A7C,
        }
    }
}

/// Counters of one [`analyze`] run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Ternary-reachability rounds until the fixpoint.
    pub ternary_rounds: u32,
    /// Latches proven stuck-at-constant by the ternary fixpoint alone.
    pub ternary_constants: u32,
    /// Candidate clauses mined (after the initiation filter and cap).
    pub mined: u32,
    /// Candidates surviving the Houdini fixpoint.
    pub retained: u32,
    /// Houdini passes over the candidate set.
    pub houdini_rounds: u32,
    /// Consecution queries issued.
    pub sat_queries: u64,
    /// Whether the run was cut short (stop flag, deadline or conflict
    /// cap). A cancelled run reports an empty invariant.
    pub cancelled: bool,
}

/// A mined, Houdini-filtered invariant over latch variables.
///
/// `clauses` is inductive as a set (initiation by construction,
/// consecution by the Houdini fixpoint); `constants` is the view of its
/// singleton clauses as stuck-at facts, the currency of template
/// refinement ([`refine_with_constants`]). Consumers must re-certify
/// through `engines::certify::certify_invariant` before trusting either.
#[derive(Clone, Debug, Default)]
pub struct StaticInvariant {
    /// The invariant: a conjunction of latch clauses.
    pub clauses: Vec<LatchClause>,
    /// Stuck-at-constant latches (singleton clauses of `clauses`).
    pub constants: Vec<(usize, bool)>,
    /// How the invariant was found.
    pub stats: AnalysisStats,
}

impl StaticInvariant {
    /// Whether the invariant carries no information.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// An empty invariant recording that the analysis was cancelled.
    fn cancelled(mut stats: AnalysisStats) -> StaticInvariant {
        stats.cancelled = true;
        stats.retained = 0;
        StaticInvariant {
            clauses: Vec::new(),
            constants: Vec::new(),
            stats,
        }
    }
}

/// Deterministic xorshift64 PRNG: the production-side stand-in for the
/// (test-only) `rand` stub, so the simulation schedule is reproducible
/// from [`AnalysisConfig::seed`] alone.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Three-valued join: definite values agreeing stay definite,
/// everything else widens to X.
fn join(a: Tern, b: Tern) -> Tern {
    if a == b {
        a
    } else {
        Tern::X
    }
}

/// Ternary-reachability fixpoint from the X-initialized reset state.
/// Returns the per-latch fixpoint values and the round count.
fn ternary_fixpoint(sys: &AigSystem, sim: &mut TernarySim) -> (Vec<Tern>, u32) {
    let mut state: Vec<Tern> = sys
        .latches
        .iter()
        .map(|l| l.init.map_or(Tern::X, Tern::from_bool))
        .collect();
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        sim.eval(sys, &state, &[]);
        let mut changed = false;
        let next: Vec<Tern> = sys
            .latches
            .iter()
            .zip(&state)
            .map(|(l, &cur)| {
                let widened = join(cur, sim.value(l.next));
                changed |= widened != cur;
                widened
            })
            .collect();
        state = next;
        if !changed {
            return (state, rounds);
        }
    }
}

/// Per-latch value signatures from deterministic random simulation:
/// bit `t` of `sigs[i]` word `t / 64` is latch `i`'s value in the
/// `t`-th visited state.
fn simulate_signatures(sys: &AigSystem, cfg: &AnalysisConfig) -> (Vec<Vec<u64>>, usize) {
    let n = sys.latches.len();
    let total = cfg.sim_restarts * (cfg.sim_steps + 1);
    let words = total.div_ceil(64);
    let mut sigs = vec![vec![0u64; words]; n];
    let mut rng = XorShift::new(cfg.seed);
    let mut t = 0usize;
    for _ in 0..cfg.sim_restarts {
        let mut state: Vec<bool> = sys
            .latches
            .iter()
            .map(|l| l.init.unwrap_or_else(|| rng.next_bool()))
            .collect();
        for step in 0..=cfg.sim_steps {
            for (i, &v) in state.iter().enumerate() {
                if v {
                    sigs[i][t / 64] |= 1u64 << (t % 64);
                }
            }
            t += 1;
            if step < cfg.sim_steps {
                let inputs: Vec<bool> = (0..sys.inputs.len()).map(|_| rng.next_bool()).collect();
                state = sys.step(&state, &inputs);
            }
        }
    }
    (sigs, total)
}

/// Whether a latch clause holds in **every** initial state: some
/// literal must be pinned true by a reset value (an uninitialized latch
/// is free to take either value at reset).
fn holds_at_init(sys: &AigSystem, clause: &LatchClause) -> bool {
    clause.iter().any(|&(i, v)| sys.latches[i].init == Some(v))
}

/// Mines candidate clauses from the ternary fixpoint and the simulation
/// signatures, initiation-filtered, deduplicated and capped.
fn mine_candidates(
    sys: &AigSystem,
    fix: &[Tern],
    sigs: &[Vec<u64>],
    total_states: usize,
    cfg: &AnalysisConfig,
) -> Vec<LatchClause> {
    let n = sys.latches.len();
    let mut seen = std::collections::BTreeSet::new();
    let mut out: Vec<LatchClause> = Vec::new();
    let mut push = |clause: LatchClause, out: &mut Vec<LatchClause>| {
        if out.len() < cfg.max_candidates
            && holds_at_init(sys, &clause)
            && seen.insert(clause.clone())
        {
            out.push(clause);
        }
    };

    // Stuck-at facts from the ternary fixpoint (sound already, but fed
    // through Houdini like everything else: the constant subset is
    // self-supporting there, so it survives unharmed).
    for (i, &t) in fix.iter().enumerate() {
        if let Some(v) = t.known() {
            push(vec![(i, v)], &mut out);
        }
    }

    // Constant signatures the ternary domain missed.
    let all_ones_mask = |w: usize| -> u64 {
        let used = total_states - w * 64;
        if used >= 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        }
    };
    for i in 0..n {
        if fix[i].known().is_some() {
            continue;
        }
        let always_true = sigs[i]
            .iter()
            .enumerate()
            .all(|(w, &s)| s == all_ones_mask(w));
        let always_false = sigs[i].iter().all(|&s| s == 0);
        if always_true {
            push(vec![(i, true)], &mut out);
        } else if always_false {
            push(vec![(i, false)], &mut out);
        }
    }

    // Equivalences and antivalences: group by (normalized) signature.
    // Each group contributes a chain of pairwise candidates.
    let mut keyed: Vec<(Vec<u64>, bool, usize)> = (0..n)
        .map(|i| {
            // Normalize so complementary signatures collide: flip when
            // the first state bit is set.
            let flip = sigs[i].first().is_some_and(|&w| w & 1 == 1);
            let key: Vec<u64> = if flip {
                sigs[i]
                    .iter()
                    .enumerate()
                    .map(|(w, &s)| !s & all_ones_mask(w))
                    .collect()
            } else {
                sigs[i].clone()
            };
            (key, flip, i)
        })
        .collect();
    keyed.sort();
    for pair in keyed.windows(2) {
        let (ka, fa, a) = (&pair[0].0, pair[0].1, pair[0].2);
        let (kb, fb, b) = (&pair[1].0, pair[1].1, pair[1].2);
        if ka != kb {
            continue;
        }
        if fa == fb {
            // a ≡ b: (¬a ∨ b) ∧ (a ∨ ¬b).
            push(vec![(a, false), (b, true)], &mut out);
            push(vec![(a, true), (b, false)], &mut out);
        } else {
            // a ≡ ¬b: (a ∨ b) ∧ (¬a ∨ ¬b).
            push(vec![(a, true), (b, true)], &mut out);
            push(vec![(a, false), (b, false)], &mut out);
        }
    }

    // Implications (a → b as ¬a ∨ b), pairwise-scanned only on small
    // designs — the scan is quadratic in the latch count.
    if n <= cfg.max_implication_latches {
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let implies = sigs[a].iter().zip(&sigs[b]).all(|(&sa, &sb)| sa & !sb == 0);
                let nontrivial = sigs[a].iter().any(|&s| s != 0)
                    && sigs[b]
                        .iter()
                        .enumerate()
                        .any(|(w, &s)| s != all_ones_mask(w));
                if implies && nontrivial {
                    push(vec![(a, false), (b, true)], &mut out);
                }
            }
        }
    }
    out
}

/// Runs the full static analysis: ternary fixpoint, candidate mining,
/// and the Houdini inductive filter over one template frame.
///
/// `limits` carries the caller's cancellation surface — stop flag,
/// deadline, chaos — and is cloned into every consecution query (with
/// [`AnalysisConfig::max_conflicts`] as the conflict cap when the
/// caller set none). Any interrupted query cancels the whole analysis.
pub fn analyze(
    sys: &AigSystem,
    tpl: &TransitionTemplate,
    cfg: &AnalysisConfig,
    limits: &satb::Limits,
) -> StaticInvariant {
    let mut stats = AnalysisStats::default();
    let mut sim = TernarySim::new(sys);
    let (fix, rounds) = ternary_fixpoint(sys, &mut sim);
    stats.ternary_rounds = rounds;
    stats.ternary_constants = fix.iter().filter(|t| t.known().is_some()).count() as u32;

    let (sigs, total_states) = simulate_signatures(sys, cfg);
    let candidates = mine_candidates(sys, &fix, &sigs, total_states, cfg);
    stats.mined = candidates.len() as u32;
    if candidates.is_empty() {
        return StaticInvariant {
            clauses: Vec::new(),
            constants: Vec::new(),
            stats,
        };
    }
    if limits.stop_requested() {
        return StaticInvariant::cancelled(stats);
    }

    // Houdini: all candidates guarded on the current-state side of one
    // template frame; drop every candidate a step model falsifies.
    let mut solver = Solver::new();
    let frame = tpl.instantiate(&mut solver, Part::A, 0);
    let guards: Vec<Lit> = candidates
        .iter()
        .map(|clause| {
            let g = Lit::pos(solver.new_var());
            let mut cl: Vec<Lit> = Vec::with_capacity(clause.len() + 1);
            cl.push(!g);
            cl.extend(clause.iter().map(|&(i, v)| {
                if v {
                    frame.latch_cur[i]
                } else {
                    !frame.latch_cur[i]
                }
            }));
            solver.add_clause(&cl);
            g
        })
        .collect();
    let query_limits = satb::Limits {
        max_conflicts: Some(limits.max_conflicts.unwrap_or(cfg.max_conflicts)),
        ..limits.clone()
    };
    let mut alive = vec![true; candidates.len()];
    let mut assumptions: Vec<Lit> = Vec::new();
    loop {
        stats.houdini_rounds += 1;
        let mut dropped_any = false;
        for idx in 0..candidates.len() {
            if !alive[idx] {
                continue;
            }
            if query_limits.stop_requested() {
                return StaticInvariant::cancelled(stats);
            }
            assumptions.clear();
            assumptions.extend(
                guards
                    .iter()
                    .zip(&alive)
                    .filter(|&(_, &a)| a)
                    .map(|(&g, _)| g),
            );
            assumptions.extend(candidates[idx].iter().map(|&(i, v)| {
                if v {
                    !frame.latch_next[i]
                } else {
                    frame.latch_next[i]
                }
            }));
            stats.sat_queries += 1;
            match solver.solve_limited(&assumptions, query_limits.clone()) {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    // The model is a state satisfying every live
                    // candidate whose successor escapes at least the
                    // queried one: drop every candidate the successor
                    // falsifies (the queried clause is among them).
                    for (j, clause) in candidates.iter().enumerate() {
                        if !alive[j] {
                            continue;
                        }
                        let falsified = clause
                            .iter()
                            .all(|&(i, v)| solver.value(frame.latch_next[i]) == Some(!v));
                        if falsified {
                            alive[j] = false;
                            dropped_any = true;
                        }
                    }
                    debug_assert!(!alive[idx], "queried candidate must be falsified");
                    alive[idx] = false;
                }
                SolveResult::Unknown(_) => {
                    // Limit hit mid-filter: the surviving set was not
                    // driven to the fixpoint, so nothing is trustworthy.
                    return StaticInvariant::cancelled(stats);
                }
            }
        }
        if !dropped_any {
            break;
        }
    }

    let clauses: Vec<LatchClause> = candidates
        .into_iter()
        .zip(&alive)
        .filter(|&(_, &a)| a)
        .map(|(c, _)| c)
        .collect();
    let constants: Vec<(usize, bool)> = clauses
        .iter()
        .filter(|c| c.len() == 1)
        .map(|c| c[0])
        .collect();
    stats.retained = clauses.len() as u32;
    StaticInvariant {
        clauses,
        constants,
        stats,
    }
}

/// Rebuilds `sys` with certified stuck-at-constant latches substituted
/// into every cone: a cone-of-influence refinement with a node remap.
///
/// * Every CI keeps its ordinal (the blaster's input/latch ordering is
///   load-bearing for traces and frame variables), and every latch
///   keeps its plain-CI `output` — only *references* to a constant
///   latch inside next/constraint/bad cones become the constant.
/// * AND nodes are rebuilt cone-first through the strashed builder, so
///   logic the constants fold away — and nodes outside any cone of
///   interest — vanish, and the surviving nodes are renumbered
///   compactly.
/// * Constraints folding to `true` are stripped (they are implied by
///   the invariant the engines assert anyway); constraints folding to
///   `false` are kept, preserving vacuous-safety semantics. Bad cones
///   are kept positionally even when they fold, so trace bad-indices
///   stay valid.
///
/// The result is **only** equivalent to `sys` on states satisfying the
/// constant facts; consumers must assert the invariant on every frame
/// they instantiate from it.
pub fn refine_with_constants(sys: &AigSystem, constants: &[(usize, bool)]) -> AigSystem {
    let mut const_of_ci: Vec<Option<bool>> = vec![None; sys.aig.num_cis()];
    for &(latch, v) in constants {
        if let Some(ci) = sys.aig.ci_index(sys.latches[latch].output) {
            const_of_ci[ci] = Some(v);
        }
    }

    let mut aig = crate::graph::Aig::new();
    // CIs first, in ordinal order, so every ordinal is preserved.
    let new_ci: Vec<crate::graph::AigLit> = (0..sys.aig.num_cis()).map(|_| aig.new_ci()).collect();

    // Map the cones of interest node-by-node in topological order.
    let mut roots: Vec<crate::graph::AigLit> = sys.latches.iter().map(|l| l.next).collect();
    roots.extend(&sys.constraints);
    roots.extend(&sys.bads);
    let mut map: std::collections::HashMap<u32, crate::graph::AigLit> =
        std::collections::HashMap::new();
    map.insert(0, crate::graph::AigLit::FALSE);
    let map_lit = |map: &std::collections::HashMap<u32, crate::graph::AigLit>,
                   sys: &AigSystem,
                   new_ci: &[crate::graph::AigLit],
                   const_of_ci: &[Option<bool>],
                   l: crate::graph::AigLit| {
        let base = if let Some(ci) = sys
            .aig
            .ci_index(crate::graph::AigLit::from_code((l.node() as usize) << 1))
        {
            match const_of_ci[ci] {
                Some(v) => crate::graph::AigLit::constant(v),
                None => new_ci[ci],
            }
        } else {
            map[&l.node()]
        };
        if l.is_compl() {
            !base
        } else {
            base
        }
    };
    for node in sys.aig.cone(&roots) {
        let (a, b) = sys.aig.and_fanins_of_node(node).expect("cone yields ANDs");
        let na = map_lit(&map, sys, &new_ci, &const_of_ci, a);
        let nb = map_lit(&map, sys, &new_ci, &const_of_ci, b);
        let nl = aig.and(na, nb);
        map.insert(node, nl);
    }
    let remap = |l: crate::graph::AigLit| map_lit(&map, sys, &new_ci, &const_of_ci, l);

    let latches: Vec<crate::seq::Latch> = sys
        .latches
        .iter()
        .map(|l| crate::seq::Latch {
            output: new_ci[sys.aig.ci_index(l.output).expect("latch output is a CI")],
            next: remap(l.next),
            init: l.init,
            name: l.name.clone(),
        })
        .collect();
    let inputs: Vec<crate::graph::AigLit> = sys
        .inputs
        .iter()
        .map(|&l| new_ci[sys.aig.ci_index(l).expect("input is a CI")])
        .collect();
    let constraints: Vec<crate::graph::AigLit> = sys
        .constraints
        .iter()
        .map(|&c| remap(c))
        .filter(|&c| c != crate::graph::AigLit::TRUE)
        .collect();
    let bads: Vec<crate::graph::AigLit> = sys.bads.iter().map(|&b| remap(b)).collect();

    AigSystem {
        aig,
        inputs,
        input_names: sys.input_names.clone(),
        latches,
        constraints,
        bads,
        bad_names: sys.bad_names.clone(),
        name: sys.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Latch;
    use crate::Aig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A hand-rolled system: latch 0 stuck at 0 (self-loop from reset
    /// 0), latch 1 free-running on an input, latch 2 mirroring latch 1
    /// one cycle behind... except both reset to 0 and share the input,
    /// so 1 ≡ 2 never holds; instead latch 3 duplicates latch 1
    /// exactly (same next function, same reset).
    fn shaped_system() -> AigSystem {
        let mut aig = Aig::new();
        let inp = aig.new_ci();
        let l0 = aig.new_ci();
        let l1 = aig.new_ci();
        let l3 = aig.new_ci();
        let n1 = aig.xor(l1, inp);
        let n3 = aig.xor(l3, inp);
        let bad = aig.and(l0, l1);
        AigSystem {
            aig,
            inputs: vec![inp],
            input_names: vec!["i".into()],
            latches: vec![
                Latch {
                    output: l0,
                    next: l0,
                    init: Some(false),
                    name: "stuck".into(),
                },
                Latch {
                    output: l1,
                    next: n1,
                    init: Some(false),
                    name: "a".into(),
                },
                Latch {
                    output: l3,
                    next: n3,
                    init: Some(false),
                    name: "b".into(),
                },
            ],
            constraints: vec![],
            bads: vec![bad],
            bad_names: vec!["bad".into()],
            name: "shaped".into(),
        }
    }

    #[test]
    fn finds_stuck_latch_and_equivalence() {
        let sys = shaped_system();
        let tpl = TransitionTemplate::compile(&sys);
        let inv = analyze(
            &sys,
            &tpl,
            &AnalysisConfig::default(),
            &satb::Limits::default(),
        );
        assert!(!inv.stats.cancelled);
        assert!(
            inv.constants.contains(&(0, false)),
            "latch 0 is stuck at 0: {inv:?}"
        );
        // Latches 1 and 2 (indices of "a"/"b") are equivalent; both
        // implication directions must survive Houdini.
        assert!(
            inv.clauses.contains(&vec![(1, false), (2, true)])
                && inv.clauses.contains(&vec![(1, true), (2, false)]),
            "a ≡ b must be retained: {:?}",
            inv.clauses
        );
        assert!(inv.stats.retained as usize == inv.clauses.len());
    }

    #[test]
    fn ternary_fixpoint_is_sound_on_shift_register() {
        // Reset-0 shift register fed by constant 0: everything stuck.
        let mut aig = Aig::new();
        let l0 = aig.new_ci();
        let l1 = aig.new_ci();
        let sys = AigSystem {
            aig,
            inputs: vec![],
            input_names: vec![],
            latches: vec![
                Latch {
                    output: l0,
                    next: crate::graph::AigLit::FALSE,
                    init: Some(false),
                    name: "s0".into(),
                },
                Latch {
                    output: l1,
                    next: l0,
                    init: Some(false),
                    name: "s1".into(),
                },
            ],
            constraints: vec![],
            bads: vec![l1],
            bad_names: vec!["b".into()],
            name: "shift".into(),
        };
        let mut sim = TernarySim::new(&sys);
        let (fix, _) = ternary_fixpoint(&sys, &mut sim);
        assert_eq!(fix, vec![Tern::F, Tern::F]);
    }

    #[test]
    fn cancelled_analysis_returns_clean_empty_invariant() {
        let sys = shaped_system();
        let tpl = TransitionTemplate::compile(&sys);
        let stop = Arc::new(AtomicBool::new(true));
        let limits = satb::Limits {
            stop: Some(stop.clone()),
            ..satb::Limits::default()
        };
        let inv = analyze(&sys, &tpl, &AnalysisConfig::default(), &limits);
        assert!(inv.stats.cancelled);
        assert!(inv.is_empty() && inv.constants.is_empty());
        stop.store(false, Ordering::Relaxed);
    }

    #[test]
    fn refinement_preserves_ci_ordinals_and_strips_folded_constraints() {
        let sys = shaped_system();
        let refined = refine_with_constants(&sys, &[(0, false)]);
        assert_eq!(refined.aig.num_cis(), sys.aig.num_cis());
        for (a, b) in sys.latches.iter().zip(&refined.latches) {
            assert_eq!(
                sys.aig.ci_index(a.output),
                refined.aig.ci_index(b.output),
                "latch CI ordinals must be preserved"
            );
        }
        // The bad cone and(l0, l1) folds to FALSE under l0 = 0.
        assert_eq!(refined.bads[0], crate::graph::AigLit::FALSE);
        // Refinement under the invariant preserves the step function on
        // invariant states: simulate both systems in lockstep.
        let mut state = vec![false, false, false];
        let mut rng = XorShift::new(7);
        for _ in 0..64 {
            let inputs = vec![rng.next_bool()];
            let a = sys.step(&state, &inputs);
            let b = refined.step(&state, &inputs);
            assert_eq!(a, b, "step mismatch on invariant state");
            state = a;
        }
    }
}
