//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive`
//! / `boxed`, range and tuple strategies, `prop_oneof!`,
//! `prop::collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Each `proptest!` test runs a fixed number
//! of deterministic random cases; there is no shrinking.

#![forbid(unsafe_code)]

/// Test-case RNG and case-count configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Number of cases each `proptest!` test executes.
    pub const CASES: u32 = 128;

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A fixed-seed RNG (no shrinking, so reproducibility is by
        /// construction).
        pub fn deterministic() -> TestRng {
            TestRng(StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15))
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform index below `n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n)
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of random values (subset of `proptest::Strategy`).
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> T + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
        }

        /// Builds recursive structures: `f` receives a strategy for the
        /// substructure and returns the strategy for one more level.
        /// `depth` bounds the recursion; `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility
        /// and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                // Mix in leaves so sampled structures vary in depth.
                let l = leaf.clone();
                cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            cur
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of values from `element` with a length in
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses uniformly among the given strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declares property tests: each function runs
/// [`test_runner::CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let result: ::std::result::Result<(), String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!("property failed at case {case}: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 0u64..10, b in 3usize..7) {
            prop_assert!(a < 10);
            prop_assert!((3..7).contains(&b));
        }

        #[test]
        fn tuples_and_vec(pairs in prop::collection::vec((0u64..4, 0u64..4), 0..5)) {
            prop_assert!(pairs.len() < 5);
            for (x, y) in &pairs {
                prop_assert!(*x < 4 && *y < 4);
            }
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u64),
            Node(Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 8, "leaf out of range");
                    0
                }
                T::Node(i) => 1 + depth(i),
            }
        }
        let leaf = (0u64..8).prop_map(T::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            prop_oneof![inner.prop_map(|t| T::Node(Box::new(t)))]
        });
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 4);
        }
    }
}
