//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the workspace benches use: `Criterion::default()`
//! with `sample_size`, `bench_function` with `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is plain
//! wall-clock around batches of iterations; results are printed as
//! `name: median per-iteration time` lines.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!("{name}: {median:?} / iter ({} samples)", samples.len());
        self
    }
}

/// Per-benchmark timing handle (stand-in for `criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup call, then a small fixed batch per sample.
        black_box(f());
        let batch = 3u32;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Declares a benchmark group (stand-in for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
