//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of the rand 0.8 API the workspace's tests
//! use: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range` and `gen_bool`. The generator is a deterministic
//! splitmix64 / xoshiro256** pair — statistically fine for fuzz tests,
//! **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a type from raw generator output.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(next: &mut dyn FnMut() -> u64) -> $t {
                next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

/// Integer types uniform sampling is implemented for (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics on empty ranges.
    fn sample_exclusive(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics on empty ranges.
    fn sample_inclusive(lo: Self, hi: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(lo: $t, hi: $t, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (next() as u128 % span) as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be uniformly sampled from. The sampled type `T`
/// is a free parameter (as in rand) so integer-literal ranges infer
/// their type from the caller's annotation.
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics on empty ranges.
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_exclusive(self.start, self.end, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(*self.start(), *self.end(), next)
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(&mut || self.next_u64())
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`; same name, different — but fixed — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x = a.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = a.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
        }
        assert!((0..1000).filter(|_| a.gen_bool(0.5)).count() > 300);
        assert!(!a.gen_bool(0.0));
        assert!(a.gen_bool(1.0));
    }

    #[test]
    fn covers_range_uniformly_enough() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [0usize; 8];
        for _ in 0..8000 {
            seen[r.gen_range(0..8usize)] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 500, "bucket {i} undersampled: {c}");
        }
    }
}
