//! # hwsw — unbounded safety verification for hardware using software analyzers
//!
//! Facade crate of the workspace reproducing *Mukherjee, Schrammel,
//! Kroening, Melham: "Unbounded Safety Verification for Hardware Using
//! Software Analyzers" (DATE 2016)*.
//!
//! The pipeline (paper Figure 2):
//!
//! ```text
//! Verilog RTL ──vfront──► elaborated design
//!     ├── synthesis ──► word-level transition system (rtlir)
//!     │       ├── bit-blasting (aig) ──► ABC-style engines  (engines)
//!     │       └── word-level unrolling ──► EBMC-style k-induction
//!     └── v2c ──► ANSI-C software-netlist ──cfront──► software program
//!                      └── software analyzers (swan): CBMC / 2LS /
//!                          CPAChecker / IMPARA / SeaHorn / Astrée styles
//! ```
//!
//! The paper's best configuration — the Figure 5 "hybrid" — is the
//! parallel [`Portfolio`]: BMC, k-induction, interpolation and PDR
//! race on worker threads, the first definite verdict wins, and the
//! losers are cooperatively cancelled through the `satb` stop flag.
//! Software analyzers join the race through [`swan::SwSeat`], which
//! adapts any `swan` analyzer to the hardware `Checker` interface
//! over the v2c software-netlist path.
//!
//! This crate re-exports the public API of every component so examples
//! and downstream users need a single dependency.
//!
//! # Quickstart
//!
//! ```
//! use hwsw::vfront;
//! use hwsw::engines::{pdr::Pdr, Checker, Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//! module counter(input clk, input rst);
//!   reg [3:0] c;
//!   initial c = 0;
//!   always @(posedge clk)
//!     if (rst) c <= 0; else if (c < 10) c <= c + 1;
//!   assert property (c <= 10);
//! endmodule
//! "#;
//! let ts = vfront::compile(src, "counter")?;
//! let verdict = Pdr::default().check(&ts);
//! assert!(matches!(verdict.outcome, Verdict::Safe));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use aig;
pub use bmarks;
pub use cfront;
pub use engines;
pub use rtlir;
pub use satb;
pub use swan;
pub use v2c;
pub use vfront;

pub use engines::portfolio::Portfolio;
